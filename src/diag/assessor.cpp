#include "diag/assessor.hpp"

#include <algorithm>
#include <bit>
#include <string>

namespace decos::diag {

Assessor::Assessor(Params p, fault::SpatialLayout layout,
                   std::uint32_t component_count, std::uint32_t /*job_count*/)
    : p_(p),
      classifier_(p.classifier, std::move(layout)),
      store_(p.evidence),
      component_count_(component_count),
      component_trust_(component_count, p.trust.initial),
      component_trajectories_(component_count),
      was_stale_(component_count, false),
      channels_(component_count),
      component_hits_(component_count, 0),
      mask_words_((component_count + 63) / 64) {
  if (mask_words_ == 0) mask_words_ = 1;
  transport_masks_.assign(component_count_ * mask_words_, 0);
}

void Assessor::register_agent(platform::JobId agent_job,
                              platform::ComponentId component) {
  agent_component_[agent_job] = component;
}

void Assessor::register_subject_job(platform::JobId job,
                                    platform::ComponentId host) {
  jobs_by_host_[host].push_back(job);
  job_host_[job] = host;
  job_trust_.emplace(job, p_.trust.initial);
  if (job >= job_hits_.size()) job_hits_.resize(job + 1, 0);
}

void Assessor::bind_metrics(obs::Registry& registry) {
  metrics_ = &registry;
  symptoms_metric_ = registry.counter("diag.symptoms_ingested");
  violations_metric_ = registry.counter("diag.trust_violations");
  gaps_metric_ = registry.counter("diag.assessor.symptom_gaps");
  duplicates_metric_ = registry.counter("diag.assessor.duplicates_dropped");
  agent_drops_metric_ = registry.counter("diag.assessor.agent_drops_reported");
}

obs::ProvenanceId Assessor::journey_for(const Symptom& s) const {
  if (!prov_ || !prov_->enabled()) return obs::kNoJourney;
  obs::ProvenanceId j = obs::kNoJourney;
  if (s.subject_job.has_value()) j = prov_->journey_for_job(*s.subject_job);
  if (j == obs::kNoJourney) {
    j = prov_->journey_for_component(s.subject_component);
  }
  return j;
}

void Assessor::note_component_trust(platform::ComponentId c) {
  if (component_trust_[c] < p_.trust.violation_threshold &&
      !component_violation_round_.contains(c)) {
    component_violation_round_[c] = round_;
    violations_metric_.inc();
    if (prov_ && prov_->enabled()) {
      prov_->event(prov_->journey_for_component(c), obs::ProvStage::kVerdict,
                   "assessor", "trust-violation", round_);
    }
  }
}

void Assessor::note_job_trust(platform::JobId j) {
  if (job_trust_.at(j) < p_.trust.violation_threshold &&
      !job_violation_round_.contains(j)) {
    job_violation_round_[j] = round_;
    violations_metric_.inc();
    if (prov_ && prov_->enabled()) {
      prov_->event(prov_->journey_for_job(j), obs::ProvStage::kVerdict,
                   "assessor", "trust-violation", round_);
    }
  }
}

std::optional<tta::RoundId> Assessor::first_component_violation(
    platform::ComponentId c) const {
  auto it = component_violation_round_.find(c);
  if (it == component_violation_round_.end()) return std::nullopt;
  return it->second;
}

std::optional<tta::RoundId> Assessor::first_job_violation(
    platform::JobId j) const {
  auto it = job_violation_round_.find(j);
  if (it == job_violation_round_.end()) return std::nullopt;
  return it->second;
}

tta::RoundId Assessor::evidence_age(platform::ComponentId c) const {
  const AgentChannel& ch = channels_.at(c);
  return round_ > ch.last_heard ? round_ - ch.last_heard : 0;
}

double Assessor::evidence_quality(platform::ComponentId c) const {
  if (!p_.hardening) return 1.0;
  const tta::RoundId age = evidence_age(c);
  if (age <= p_.stale_after) return 1.0;
  // Linear decay after the staleness threshold; floor at 0 once silence
  // reaches five thresholds.
  const double excess = static_cast<double>(age - p_.stale_after);
  return std::max(0.0, 1.0 - excess / static_cast<double>(4 * p_.stale_after));
}

double Assessor::job_evidence_quality(platform::JobId j) const {
  auto it = job_host_.find(j);
  if (it == job_host_.end()) return evidence_quality(0);
  return evidence_quality(it->second);
}

std::vector<platform::ComponentId> Assessor::stale_components() const {
  std::vector<platform::ComponentId> out;
  for (platform::ComponentId c = 0; c < component_count_; ++c) {
    if (channel_degraded(c)) out.push_back(c);
  }
  return out;
}

void Assessor::track_channel(platform::ComponentId agent,
                             const vnet::Message& m) {
  AgentChannel& ch = channels_[agent];
  ch.last_heard = std::max(ch.last_heard, round_);
  // The multiplexer assigns contiguous per-port sequence numbers to every
  // accepted message, so a jump on the symptom port is exactly the number
  // of diagnostic messages the channel lost in flight.
  if (!ch.seq_seen) {
    ch.seq_seen = true;
    ch.next_seq = m.seq + 1;
    return;
  }
  if (m.seq > ch.next_seq) {
    const std::uint32_t lost = m.seq - ch.next_seq;
    gaps_ += lost;
    gaps_metric_.inc(lost);
  }
  if (m.seq + 1 > ch.next_seq) ch.next_seq = m.seq + 1;
}

bool Assessor::dedupe_accept(const Symptom& s) {
  const DedupKey key{s.observer, s.type, s.subject_component,
                     s.subject_job.value_or(platform::kInvalidJob), s.round};
  return seen_.insert(key).second;
}

void Assessor::ingest_external(const Symptom& s) {
  if (recorder_) recorder_->record(s);
  store_.ingest(s);
  symptoms_metric_.inc();
  if (prov_ && prov_->enabled()) {
    prov_->event(journey_for(s), obs::ProvStage::kEvidence, "assessor",
                 to_string(s.type), s.round);
  }
  if (s.subject_component < component_trust_.size()) {
    component_trust_[s.subject_component] = std::max(
        0.0, component_trust_[s.subject_component] - p_.trust.drop);
    note_component_trust(s.subject_component);
  }
}

void Assessor::process(platform::JobContext& ctx) {
  round_ = ctx.round();

  // Which FRUs were implicated by symptoms ingested this dispatch.
  // Member scratch, reset here: the steady-state dispatch allocates
  // nothing (the trust-update loops below walk every FRU anyway, so the
  // O(N) reset costs no extra asymptotic work).
  std::fill(component_hits_.begin(), component_hits_.end(), 0u);
  std::fill(job_hits_.begin(), job_hits_.end(), 0u);
  std::fill(transport_masks_.begin(), transport_masks_.end(), 0u);

  for (const vnet::Message& m : ctx.inbox()) {
    auto agent_it = agent_component_.find(m.sender);
    if (agent_it == agent_component_.end()) continue;  // not a known agent
    const platform::ComponentId agent = agent_it->second;
    if (const auto hb = decode_heartbeat(m)) {
      if (fp_ && fp_->hit(fault::FaultSite::kHeartbeatReceive)) {
        // Heartbeat dropped at the inbox: neither liveness nor the wire
        // sequence advances, so the loss surfaces later as staleness plus
        // a sequence gap — exactly like a frame lost in flight.
        continue;
      }
      if (p_.hardening) track_channel(agent, m);
      ++heartbeats_;
      AgentChannel& ch = channels_[agent];
      ch.reported_detected = hb->symptoms_detected;
      ++ch.heartbeats;
      if (hb->symptoms_dropped > ch.reported_dropped) {
        const std::uint32_t delta = hb->symptoms_dropped - ch.reported_dropped;
        agent_drops_ += delta;
        agent_drops_metric_.inc(delta);
        ch.reported_dropped = hb->symptoms_dropped;
      }
      continue;
    }
    if (p_.hardening) track_channel(agent, m);
    const auto symptom = decode(m, agent);
    if (!symptom) continue;
    // Retransmissions arrive as duplicates of an already-ingested
    // observation key; charging them again would let the resend machinery
    // itself erode trust.
    if (p_.hardening && !dedupe_accept(*symptom)) {
      ++duplicates_;
      duplicates_metric_.inc();
      continue;
    }
    if (recorder_) recorder_->record(*symptom);
    store_.ingest(*symptom);
    symptoms_metric_.inc();
    if (prov_ && prov_->enabled()) {
      prov_->event(journey_for(*symptom), obs::ProvStage::kEvidence,
                   "assessor", to_string(symptom->type), symptom->round);
    }
    // Trust is kept per FRU: job-level symptoms (value, gap, overflow)
    // charge the software FRU — a misconfigured job must not erode
    // confidence in the healthy board it runs on. Transport symptoms are
    // deferred: the charged side depends on the observer's spread.
    if (symptom->subject_job) {
      const platform::JobId j = *symptom->subject_job;
      if (j >= job_hits_.size()) job_hits_.resize(j + 1, 0);
      ++job_hits_[j];
    } else if ((symptom->type == SymptomType::kSlotCrcError ||
                symptom->type == SymptomType::kSlotTimingError ||
                symptom->type == SymptomType::kSlotOmission) &&
               symptom->observer < component_count_ &&
               symptom->subject_component < component_count_) {
      transport_masks_[symptom->observer * mask_words_ +
                       symptom->subject_component / 64] |=
          std::uint64_t{1} << (symptom->subject_component % 64);
    } else if (symptom->subject_component < component_count_) {
      ++component_hits_[symptom->subject_component];
    }
  }

  // An observer flagging most of its peers at once is itself the suspect
  // (connector/EMI on its receive path): charge the observer, not the
  // blameless senders — mirroring the classifier's credibility rule.
  const std::size_t spread_bar =
      std::max<std::size_t>(2, (3 * (component_count_ - 1)) / 4);
  for (platform::ComponentId observer = 0; observer < component_count_;
       ++observer) {
    const std::uint64_t* mask = &transport_masks_[observer * mask_words_];
    std::size_t spread = 0;
    for (std::size_t w = 0; w < mask_words_; ++w) {
      spread += static_cast<std::size_t>(std::popcount(mask[w]));
    }
    if (spread == 0) continue;
    if (spread >= spread_bar) {
      component_hits_[observer] += static_cast<std::uint32_t>(spread);
    } else {
      for (std::size_t w = 0; w < mask_words_; ++w) {
        for (std::uint64_t word = mask[w]; word != 0; word &= word - 1) {
          ++component_hits_[w * 64 +
                            static_cast<std::size_t>(std::countr_zero(word))];
        }
      }
    }
  }

  // Staleness-expiry fault site: reached once per fresh->stale transition
  // of an agent channel. Firing models a watchdog glitch — the expiry
  // tick is missed and the channel reads fresh for another full window,
  // so trust keeps recovering on absent evidence.
  if (fp_ && p_.hardening) {
    for (platform::ComponentId c = 0; c < component_count_; ++c) {
      bool stale = evidence_age(c) > p_.stale_after;
      if (stale && !was_stale_[c] &&
          fp_->hit(fault::FaultSite::kStalenessExpiry)) {
        channels_[c].last_heard = round_;
        stale = false;
      }
      was_stale_[c] = stale;
    }
  }

  // Trust update: recovery for quiet FRUs, drop scaled by symptom volume.
  // "Quiet" only earns recovery while the FRU's agent channel is fresh: a
  // silent agent means *absence of evidence*, and absence of evidence must
  // freeze trust, not launder it back toward 1.0.
  for (platform::ComponentId c = 0; c < component_count_; ++c) {
    const std::uint32_t hits = component_hits_[c];
    if (hits == 0) {
      if (!channel_degraded(c)) {
        component_trust_[c] =
            std::min(1.0, component_trust_[c] + p_.trust.recovery);
      }
    } else {
      const double scale = static_cast<double>(std::min(hits, 4u));
      component_trust_[c] =
          std::max(0.0, component_trust_[c] - p_.trust.drop * scale);
      note_component_trust(c);
    }
  }
  for (auto& [j, trust] : job_trust_) {
    const std::uint32_t hits = j < job_hits_.size() ? job_hits_[j] : 0;
    if (hits == 0) {
      auto host_it = job_host_.find(j);
      if (host_it == job_host_.end() || !channel_degraded(host_it->second)) {
        trust = std::min(1.0, trust + p_.trust.recovery);
      }
    } else {
      const double scale = static_cast<double>(std::min(hits, 4u));
      trust = std::max(0.0, trust - p_.trust.drop * scale);
      note_job_trust(j);
    }
  }

  // Trajectory sampling (Fig. 9).
  if (round_ >= last_sample_ + p_.sample_period) {
    last_sample_ = round_;
    for (platform::ComponentId c = 0; c < component_count_; ++c) {
      component_trajectories_[c].push_back(TrustSample{round_, component_trust_[c]});
    }
    export_staleness();
  }

  // Dedupe keys older than the window can never be duplicated again (the
  // resend buffer is far shorter); drop them to stay bounded.
  if (p_.hardening && round_ >= last_dedupe_prune_ + p_.dedupe_window) {
    last_dedupe_prune_ = round_;
    const tta::RoundId horizon =
        round_ > p_.dedupe_window ? round_ - p_.dedupe_window : 0;
    std::erase_if(seen_,
                  [horizon](const DedupKey& k) { return k.round < horizon; });
  }

  store_.prune(round_);
}

void Assessor::export_staleness() {
  if (!metrics_ || !p_.hardening) return;
  for (platform::ComponentId c = 0; c < component_count_; ++c) {
    metrics_
        ->gauge("diag.evidence_staleness",
                std::string("fru=c") + std::to_string(c))
        .set(static_cast<double>(evidence_age(c)));
  }
}

void Assessor::reset_component_trust(platform::ComponentId c) {
  component_trust_.at(c) = p_.trust.initial;
  component_violation_round_.erase(c);
}

void Assessor::reset_job_trust(platform::JobId j) {
  job_trust_[j] = p_.trust.initial;
  job_violation_round_.erase(j);
}

void Assessor::reconcile_from(const Assessor& fresher) {
  // Per-FRU max-staleness merge: the side that heard the FRU's agent more
  // recently contributes trust and channel state.
  for (platform::ComponentId c = 0; c < component_count_; ++c) {
    if (fresher.channels_[c].last_heard >= channels_[c].last_heard) {
      channels_[c] = fresher.channels_[c];
      component_trust_[c] = fresher.component_trust_[c];
    }
    auto vit = fresher.component_violation_round_.find(c);
    if (vit != fresher.component_violation_round_.end()) {
      auto [mine, inserted] = component_violation_round_.emplace(c, vit->second);
      if (!inserted) mine->second = std::min(mine->second, vit->second);
    }
  }
  for (auto& [j, trust] : job_trust_) {
    auto host_it = job_host_.find(j);
    const platform::ComponentId host =
        host_it == job_host_.end() ? 0 : host_it->second;
    auto theirs = fresher.job_trust_.find(j);
    if (theirs != fresher.job_trust_.end() &&
        fresher.channels_[host].last_heard >= channels_[host].last_heard) {
      trust = theirs->second;
    }
  }
  for (const auto& [j, r] : fresher.job_violation_round_) {
    auto [mine, inserted] = job_violation_round_.emplace(j, r);
    if (!inserted) mine->second = std::min(mine->second, r);
  }
  // Both assessors subscribe to the same symptom multicast, so the side
  // that stayed alive holds (essentially) a superset of the other's
  // evidence: adopt its store wholesale when it is ahead in rounds or in
  // ingested volume. The dedupe sets are unioned so that neither side's
  // already-charged observations can be double-ingested afterwards.
  if (fresher.round_ >= round_ ||
      fresher.store_.symptoms_ingested() > store_.symptoms_ingested()) {
    store_ = fresher.store_;
    component_trajectories_ = fresher.component_trajectories_;
    last_sample_ = fresher.last_sample_;
  }
  seen_.insert(fresher.seen_.begin(), fresher.seen_.end());
}

Diagnosis Assessor::diagnose_component(platform::ComponentId c) const {
  Diagnosis d = classifier_.classify_component(store_, c, round_, component_count_);
  if (metrics_) {
    metrics_
        ->counter("diag.classifications",
                  std::string("cls=") + fault::to_string(d.cls))
        .inc();
  }
  if (prov_ && prov_->enabled() && d.cls != fault::FaultClass::kNone) {
    prov_->event(prov_->journey_for_component(c), obs::ProvStage::kVerdict,
                 "assessor", fault::to_string(d.cls), round_);
  }
  return d;
}

Diagnosis Assessor::diagnose_job(platform::JobId j) const {
  const auto host_it = job_host_.find(j);
  const platform::ComponentId host =
      host_it == job_host_.end() ? 0 : host_it->second;
  const Diagnosis host_diag = diagnose_component(host);
  static const std::vector<platform::JobId> kNoSiblings;
  const auto sib_it = jobs_by_host_.find(host);
  const auto& siblings =
      sib_it == jobs_by_host_.end() ? kNoSiblings : sib_it->second;
  Diagnosis d = classifier_.classify_job(store_, j, host_diag, siblings, round_);
  if (metrics_) {
    metrics_
        ->counter("diag.classifications",
                  std::string("cls=") + fault::to_string(d.cls))
        .inc();
  }
  if (prov_ && prov_->enabled() && d.cls != fault::FaultClass::kNone) {
    prov_->event(prov_->journey_for_job(j), obs::ProvStage::kVerdict,
                 "assessor", fault::to_string(d.cls), round_);
  }
  return d;
}

}  // namespace decos::diag
