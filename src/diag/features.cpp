#include "diag/features.hpp"

#include <cmath>

namespace decos::diag {

std::vector<Episode> episodes_of(const std::vector<tta::RoundId>& rounds,
                                 tta::RoundId gap) {
  std::vector<Episode> eps;
  for (tta::RoundId r : rounds) {
    if (!eps.empty() && r <= eps.back().last + gap) {
      eps.back().last = r;
      ++eps.back().rounds;
    } else {
      eps.push_back(Episode{r, r, 1});
    }
  }
  return eps;
}

std::vector<tta::RoundId> credible_sender_rounds(const EvidenceStore& ev,
                                                 platform::ComponentId c,
                                                 const FeatureParams& p) {
  std::vector<tta::RoundId> rounds;
  for (const auto& [r, sr] : ev.about(c)) {
    std::uint32_t credible = 0;
    for (platform::ComponentId o : sr.observers) {
      const auto& reported = ev.reported_by(o);
      auto it = reported.find(r);
      const std::size_t spread =
          it == reported.end() ? 0 : it->second.senders_reported.size();
      if (spread < p.sender_spread) ++credible;
    }
    if (credible >= p.observer_quorum) rounds.push_back(r);
  }
  return rounds;
}

std::vector<Episode> sender_episodes(const EvidenceStore& ev,
                                     platform::ComponentId c,
                                     const FeatureParams& p) {
  return episodes_of(credible_sender_rounds(ev, c, p), p.episode_gap);
}

std::vector<tta::RoundId> observer_rounds(const EvidenceStore& ev,
                                          platform::ComponentId c,
                                          const FeatureParams& p) {
  std::vector<tta::RoundId> rounds;
  for (const auto& [r, orow] : ev.reported_by(c)) {
    if (orow.senders_reported.size() >= p.sender_spread) rounds.push_back(r);
  }
  return rounds;
}

std::vector<Episode> observer_episodes(const EvidenceStore& ev,
                                       platform::ComponentId c,
                                       const FeatureParams& p) {
  return episodes_of(observer_rounds(ev, c, p), p.episode_gap);
}

bool rate_increasing(const std::vector<Episode>& eps, const FeatureParams& p) {
  if (eps.size() < p.min_episodes_for_trend) return false;
  std::vector<double> gaps;
  for (std::size_t i = 1; i < eps.size(); ++i) {
    gaps.push_back(static_cast<double>(eps[i].first - eps[i - 1].last));
  }
  const std::size_t half = gaps.size() / 2;
  if (half == 0) return false;
  double early = 0, late = 0;
  for (std::size_t i = 0; i < half; ++i) early += gaps[i];
  for (std::size_t i = gaps.size() - half; i < gaps.size(); ++i) late += gaps[i];
  early /= static_cast<double>(half);
  late /= static_cast<double>(half);
  return early > 0 && late < early * p.wearout_gap_ratio;
}

bool spatially_correlated(const EvidenceStore& ev, platform::ComponentId c,
                          const std::vector<Episode>& eps,
                          const fault::SpatialLayout& layout,
                          std::uint32_t component_count,
                          const FeatureParams& p) {
  if (eps.empty()) return false;
  // Count how many of c's episodes coincide with receive-path trouble at
  // a spatially proximate component. The verdict needs a *majority*: a
  // vehicle with a bad connector also drives past the occasional
  // interference zone, and one coincidence must not relabel the whole
  // recurring connector history as EMI. A true massive transient, by
  // contrast, correlates in (almost) every episode it produced.
  std::size_t correlated = 0;
  for (const Episode& e : eps) {
    bool hit = false;
    for (platform::ComponentId o = 0; o < component_count && !hit; ++o) {
      if (o == c) continue;
      if (std::abs(layout.position.at(o) - layout.position.at(c)) >
          p.spatial_radius) {
        continue;
      }
      const auto& reported = ev.reported_by(o);
      auto it = reported.lower_bound(
          e.first > p.correlation_delta ? e.first - p.correlation_delta : 0);
      for (; it != reported.end() && it->first <= e.last + p.correlation_delta;
           ++it) {
        if (it->second.senders_reported.size() >= p.sender_spread) {
          hit = true;
          break;
        }
      }
    }
    if (hit) ++correlated;
  }
  return 2 * correlated > eps.size();
}

VerdictTotals verdict_totals(const EvidenceStore& ev, platform::ComponentId c,
                             const FeatureParams& p) {
  VerdictTotals vt;
  for (const auto& [r, sr] : ev.about(c)) {
    if (sr.observers.size() < p.observer_quorum) continue;
    ++vt.quorum_rounds;
    vt.crc += sr.crc;
    vt.timing += sr.timing;
    vt.omission += sr.omission;
  }
  return vt;
}

double alpha_score(const EvidenceStore& ev, platform::ComponentId c,
                   tta::RoundId now, const FeatureParams& p, double decay) {
  double alpha = 0.0;
  for (tta::RoundId r : credible_sender_rounds(ev, c, p)) {
    if (r > now) continue;
    alpha += std::pow(decay, static_cast<double>(now - r));
  }
  return alpha;
}

bool magnitudes_drifting(const std::vector<double>& mags) {
  if (mags.size() < 8) return false;
  const std::size_t bucket = mags.size() / 4;
  double mean[4] = {};
  for (std::size_t b = 0; b < 4; ++b) {
    for (std::size_t i = b * bucket; i < (b + 1) * bucket; ++i) {
      mean[b] += mags[i];
    }
    mean[b] /= static_cast<double>(bucket);
  }
  return mean[1] >= 0.9 * mean[0] && mean[2] >= 0.9 * mean[1] &&
         mean[3] >= 0.9 * mean[2] && mean[3] >= 1.8 * mean[0];
}

BitErrorFeatures bit_error_features(const fault::BitFaultLog& log,
                                    platform::ComponentId c) {
  BitErrorFeatures f;
  bool any = false;
  tta::RoundId first = 0;
  tta::RoundId last = 0;
  tta::RoundId prev = 0;
  // Runs of consecutive affected rounds (the log is time-ordered, so a
  // component's rounds arrive non-decreasing).
  std::uint64_t runs = 0;
  std::uint64_t run_rounds = 0;
  std::uint64_t bins[8] = {};

  for (const fault::BitFlipRecord& r : log.records()) {
    if (r.component != c) continue;
    ++f.flips;
    if (!any) {
      any = true;
      first = last = prev = r.round;
      ++f.events;
      ++runs;
      ++run_rounds;
    } else if (r.round != prev) {
      ++f.events;
      ++run_rounds;
      if (r.round != prev + 1) ++runs;  // gap: a new burst begins
      prev = r.round;
      if (r.round > last) last = r.round;
    }
    if (r.payload_bits > 0) {
      const std::uint64_t bin = std::uint64_t{8} * r.bit / r.payload_bits;
      ++bins[bin < 8 ? bin : 7];
    }
  }
  if (!any) return f;

  f.span_rounds = last - first + 1;
  f.flips_per_event =
      static_cast<double>(f.flips) / static_cast<double>(f.events);
  f.mean_burst_len =
      static_cast<double>(run_rounds) / static_cast<double>(runs);

  double entropy = 0.0;
  for (const std::uint64_t b : bins) {
    if (b == 0) continue;
    const double p = static_cast<double>(b) / static_cast<double>(f.flips);
    entropy -= p * std::log2(p);
  }
  f.position_entropy = entropy / 3.0;  // log2(8) = 3 -> normalized [0,1]

  // Late-vs-early flip rate over the affected span.
  const tta::RoundId mid = first + (last - first) / 2;
  std::uint64_t early = 0;
  std::uint64_t late = 0;
  for (const fault::BitFlipRecord& r : log.records()) {
    if (r.component != c) continue;
    (r.round <= mid ? early : late) += 1;
  }
  f.late_early_rate_ratio =
      early == 0 ? static_cast<double>(late)
                 : static_cast<double>(late) / static_cast<double>(early);
  return f;
}

const char* to_string(BitArchetype a) {
  switch (a) {
    case BitArchetype::kNone: return "none";
    case BitArchetype::kWearout: return "wearout";
    case BitArchetype::kEmiBurst: return "emi-burst";
    case BitArchetype::kSeuShower: return "seu-shower";
  }
  return "?";
}

BitArchetype classify_bit_pattern(const BitErrorFeatures& f) {
  if (f.flips == 0) return BitArchetype::kNone;
  // A shower confined to (nearly) one round can only be an SEU. The
  // tolerance covers the value-domain tail: a stored-value upset armed
  // during the shower surfaces on the first *clean* vnet delivery, which
  // lands one round after the rx window when the shower corrupted every
  // frame inside it. An EMI window is >= 4 rounds before its first gap.
  if (f.span_rounds <= 3) return BitArchetype::kSeuShower;
  // A rising rate across a long span is the wearout signature; an EMI
  // window's rate is flat over its bounded duration.
  if (f.late_early_rate_ratio >= 1.8) return BitArchetype::kWearout;
  return BitArchetype::kEmiBurst;
}

}  // namespace decos::diag
