#include "diag/log.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace decos::diag {

std::string DiagnosticLog::serialize() const {
  std::string out;
  out.reserve(symptoms_.size() * 40);
  char buf[128];
  for (const Symptom& s : symptoms_) {
    std::snprintf(buf, sizeof buf, "%llu %u %u %u %d %.9g\n",
                  static_cast<unsigned long long>(s.round),
                  static_cast<unsigned>(s.type), s.observer,
                  s.subject_component,
                  s.subject_job ? static_cast<int>(*s.subject_job) : -1,
                  s.magnitude);
    out += buf;
  }
  return out;
}

std::optional<DiagnosticLog> DiagnosticLog::parse(const std::string& text) {
  DiagnosticLog log;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    unsigned long long round;
    unsigned type, observer, subject;
    int job;
    double magnitude;
    if (std::sscanf(line.c_str(), "%llu %u %u %u %d %lg", &round, &type,
                    &observer, &subject, &job, &magnitude) != 6) {
      return std::nullopt;
    }
    if (type < 1 || type > 8) return std::nullopt;
    Symptom s;
    s.round = round;
    s.type = static_cast<SymptomType>(type);
    s.observer = static_cast<platform::ComponentId>(observer);
    s.subject_component = static_cast<platform::ComponentId>(subject);
    if (job >= 0) s.subject_job = static_cast<platform::JobId>(job);
    s.magnitude = magnitude;
    log.symptoms_.push_back(s);
  }
  return log;
}

bool DiagnosticLog::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << serialize();
  return static_cast<bool>(out);
}

std::optional<DiagnosticLog> DiagnosticLog::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void DiagnosticLog::replay_into(EvidenceStore& store) const {
  for (const Symptom& s : symptoms_) store.ingest(s);
}

}  // namespace decos::diag
