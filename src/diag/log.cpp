#include "diag/log.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace decos::diag {

std::string DiagnosticLog::serialize() const {
  std::string out;
  // Worst-case line: 20 (round) + 2 + 4 + 4 + 12 (job) + 17 (%.9g) +
  // 5 separators + newline ~= 64 bytes; typical lines are under 32.
  out.reserve(symptoms_.size() * 48);
  char buf[128];
  for (const Symptom& s : symptoms_) {
    std::snprintf(buf, sizeof buf, "%llu %u %u %u %d %.9g\n",
                  static_cast<unsigned long long>(s.round),
                  static_cast<unsigned>(s.type), s.observer,
                  s.subject_component,
                  s.subject_job ? static_cast<int>(*s.subject_job) : -1,
                  s.magnitude);
    out += buf;
  }
  return out;
}

std::optional<DiagnosticLog> DiagnosticLog::parse(const std::string& text) {
  DiagnosticLog log;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    unsigned long long round;
    unsigned type, observer, subject;
    int job;
    double magnitude;
    int consumed = 0;
    if (std::sscanf(line.c_str(), "%llu %u %u %u %d %lg %n", &round, &type,
                    &observer, &subject, &job, &magnitude, &consumed) != 6) {
      return std::nullopt;
    }
    // Trailing garbage means the line is not ours — reject rather than
    // silently truncate (the log is legal evidence in the garage loop).
    if (line.find_first_not_of(" \t\r",
                               static_cast<std::size_t>(consumed)) !=
        std::string::npos) {
      return std::nullopt;
    }
    if (type < 1 || type > 8) return std::nullopt;
    if (job < -1) return std::nullopt;
    Symptom s;
    s.round = round;
    s.type = static_cast<SymptomType>(type);
    s.observer = static_cast<platform::ComponentId>(observer);
    s.subject_component = static_cast<platform::ComponentId>(subject);
    if (job >= 0) s.subject_job = static_cast<platform::JobId>(job);
    s.magnitude = magnitude;
    log.symptoms_.push_back(s);
  }
  return log;
}

bool DiagnosticLog::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << serialize();
  return static_cast<bool>(out);
}

std::optional<DiagnosticLog> DiagnosticLog::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void DiagnosticLog::replay_into(EvidenceStore& store) const {
  for (const Symptom& s : symptoms_) store.ingest(s);
}

}  // namespace decos::diag
