// Out-of-Norm Assertions (Section V-A).
//
// "We define an Out-of-Norm Assertion as a predicate on the distributed
// system state that encodes a fault pattern in the value, time and space
// domain. ONAs are deterministically triggered whenever all symptoms of a
// particular fault pattern are detected on the distributed state."
//
// This module gives the concept a first-class, declarative form: an ONA
// is a named conjunction of per-dimension conditions over the evidence
// store; the standard library expresses the Fig. 8 patterns (and the rest
// of the taxonomy) as ONA objects. The OnaEngine evaluates the whole rule
// base for a subject FRU and reports every triggered assertion — the
// DECOS architecture's explainable front-end to the rule classifier.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "diag/features.hpp"
#include "fault/taxonomy.hpp"

namespace decos::diag {

/// Everything a condition may look at: the distributed state (evidence),
/// the subject FRU, the sparse-time "now", and the cluster geometry.
struct OnaContext {
  const EvidenceStore& evidence;
  platform::ComponentId subject;
  tta::RoundId now;
  std::uint32_t component_count;
  const fault::SpatialLayout& layout;
  FeatureParams features;
};

using OnaCondition = std::function<bool(const OnaContext&)>;

class OutOfNormAssertion {
 public:
  OutOfNormAssertion(std::string name, fault::FaultClass indicates,
                     std::vector<OnaCondition> all_of)
      : name_(std::move(name)), indicates_(indicates),
        conditions_(std::move(all_of)) {}

  /// Triggered iff every condition holds on the context ("all symptoms of
  /// the fault pattern are detected").
  [[nodiscard]] bool triggered(const OnaContext& ctx) const {
    for (const auto& cond : conditions_) {
      if (!cond(ctx)) return false;
    }
    return !conditions_.empty();
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] fault::FaultClass indicates() const { return indicates_; }

 private:
  std::string name_;
  fault::FaultClass indicates_;
  std::vector<OnaCondition> conditions_;
};

/// Condition library, grouped by Fig. 8 dimension. All operate on the
/// subject of the context.
namespace conditions {

// --- time dimension ------------------------------------------------------
/// At least `n` sender-side episodes.
[[nodiscard]] OnaCondition sender_episode_count_at_least(std::size_t n);
/// At most `n` sender-side episodes (and at least one).
[[nodiscard]] OnaCondition sender_episode_count_at_most(std::size_t n);
/// Episode rate increasing (wearout time signature).
[[nodiscard]] OnaCondition sender_rate_increasing();
/// The latest sender episode is a dense, still-ongoing run of at least
/// `rounds` rounds (permanent fault time signature).
[[nodiscard]] OnaCondition sender_dense_tail(tta::RoundId rounds);
/// At least `n` observer-side (receive-path) episodes.
[[nodiscard]] OnaCondition observer_episode_count_at_least(std::size_t n);

// --- space dimension -------------------------------------------------------
/// Observer-side episodes coincide with receive-path trouble at spatially
/// proximate components (massive-transient space signature).
[[nodiscard]] OnaCondition observers_spatially_correlated();
/// The negation: only this component's receive path is disturbed.
[[nodiscard]] OnaCondition observers_isolated();
/// No credible sender-side evidence exists (the component transmits
/// correctly; trouble is on its receive side only).
[[nodiscard]] OnaCondition no_sender_evidence();

// --- value dimension ----------------------------------------------------------
/// Dominant transport verdict over quorum rounds.
[[nodiscard]] OnaCondition dominant_omission();
[[nodiscard]] OnaCondition dominant_timing();
[[nodiscard]] OnaCondition dominant_corruption();

}  // namespace conditions

class OnaEngine {
 public:
  void add(OutOfNormAssertion ona) { rules_.push_back(std::move(ona)); }

  [[nodiscard]] const std::vector<OutOfNormAssertion>& rules() const {
    return rules_;
  }

  /// Every assertion triggered for the context's subject.
  [[nodiscard]] std::vector<const OutOfNormAssertion*> evaluate(
      const OnaContext& ctx) const;

  /// The standard rule base: the three Fig. 8 patterns plus the permanent
  /// and quartz patterns of the component fault model.
  [[nodiscard]] static OnaEngine standard_rules();

 private:
  std::vector<OutOfNormAssertion> rules_;
};

}  // namespace decos::diag
