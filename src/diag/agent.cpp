#include "diag/agent.hpp"

#include <cmath>

namespace decos::diag {

Agent::Agent(platform::System& system, platform::DasId diag_das,
             platform::ComponentId component, const SpecTable& specs,
             const std::vector<platform::JobId>& assessors)
    : Agent(system, diag_das, component, specs, assessors, Params{}) {}

Agent::Agent(platform::System& system, platform::DasId diag_das,
             platform::ComponentId component, const SpecTable& specs,
             const std::vector<platform::JobId>& assessors, Params params)
    : system_(system),
      component_(component),
      specs_(specs),
      p_(params),
      prov_(&system.simulator().provenance()),
      entity_("agent." + std::to_string(component)),
      heartbeats_metric_(
          system.simulator().metrics().counter("diag.agent.heartbeats")),
      retransmissions_metric_(
          system.simulator().metrics().counter("diag.agent.retransmissions")),
      dropped_metric_(
          system.simulator().metrics().counter("diag.agent.symptoms_dropped")) {
  platform::Job& job = system_.add_job(
      diag_das, "diag.agent." + std::to_string(component), component,
      [this](platform::JobContext& ctx) { flush(ctx); });
  job_id_ = job.id();
  port_ = system_.add_port(job_id_, "symptoms." + std::to_string(component),
                           platform::kDiagnosticVnet, assessors);

  system_.cluster().node(component).observation_sink =
      [this](const tta::SlotObservation& obs) { on_observation(obs); };
  system_.component(component).mux().on_overflow =
      [this](platform::PortId p, platform::VnetId vn, tta::RoundId r) {
        if (vn == platform::kDiagnosticVnet) return;  // see on_overflow()
        on_overflow(p, r);
      };
  system_.component(component).on_message_sent =
      [this](const vnet::Message& m, tta::RoundId r) { on_sent(m, r); };
  system_.component(component).on_transducer_anomaly =
      [this](platform::JobId j, double magnitude, tta::RoundId r) {
        Symptom s;
        s.type = SymptomType::kTransducerSuspect;
        s.observer = component_;
        s.subject_component = component_;
        s.subject_job = j;
        s.round = r;
        s.magnitude = magnitude;
        note(s);
      };
}

void Agent::enable_hierarchy(const HierarchyTopology* view,
                             std::vector<platform::PortId> tester_ports) {
  topo_ = view;
  tester_ports_ = std::move(tester_ports);
  fanout_metric_ =
      system_.simulator().metrics().counter("diag.agent.route_fanout");
}

std::size_t Agent::route(platform::JobContext& ctx, const vnet::Message& m,
                         platform::ComponentId subject) {
  std::size_t ok = 0;
  for (const HierarchyTopology::Position p : topo_->testers(subject)) {
    if (p >= tester_ports_.size()) continue;
    if (ctx.send(tester_ports_[p], m.value, m.kind, m.aux)) ++ok;
  }
  if (ok > 0) fanout_metric_.inc(ok);
  return ok;
}

void Agent::trace_symptom(const Symptom& s, std::string_view detail) {
  if (!prov_->enabled()) return;
  // Attribute by subject FRU: job-level faults own the job mapping, every
  // other symptom points at the subject component's journey.
  obs::ProvenanceId j = obs::kNoJourney;
  if (s.subject_job.has_value()) j = prov_->journey_for_job(*s.subject_job);
  if (j == obs::kNoJourney) {
    j = prov_->journey_for_component(s.subject_component);
  }
  prov_->event(j, obs::ProvStage::kSymptom, entity_, detail, s.round);
}

void Agent::note(Symptom s) {
  trace_symptom(s, to_string(s.type));
  if (s.round > coalesce_round_) {
    for (auto& [key, sym] : this_round_) pending_.push_back(sym);
    this_round_.clear();
    coalesce_round_ = s.round;
  }
  // Bound the backlog: when the component cannot flush (e.g. its node is
  // re-integrating), keep the most recent window and drop the oldest —
  // fresh evidence is worth more to the assessor than stale repeats. The
  // drop is counted and confessed in the next heartbeat, so the loss is
  // visible to the assessor instead of silent.
  if (pending_.size() > 4096) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(1024));
    dropped_ += 1024;
    dropped_metric_.inc(1024);
  }
  ++detected_;
  const Key key{s.type, s.subject_component,
                s.subject_job.value_or(platform::kInvalidJob)};
  auto it = this_round_.find(key);
  if (it == this_round_.end()) {
    this_round_.emplace(key, s);
  } else {
    // Coalesce: keep the worst magnitude seen this round.
    it->second.magnitude = std::max(it->second.magnitude, s.magnitude);
  }
}

void Agent::on_observation(const tta::SlotObservation& obs) {
  if (obs.verdict == tta::SlotVerdict::kCorrect) return;
  Symptom s;
  s.observer = component_;
  s.subject_component = obs.sender;
  s.round = obs.round;
  switch (obs.verdict) {
    case tta::SlotVerdict::kCrcError:
      s.type = SymptomType::kSlotCrcError;
      s.magnitude = 1.0;
      break;
    case tta::SlotVerdict::kTimingError:
      s.type = SymptomType::kSlotTimingError;
      s.magnitude = std::abs(obs.arrival_offset.us());
      break;
    case tta::SlotVerdict::kOmission:
      s.type = SymptomType::kSlotOmission;
      s.magnitude = 1.0;
      break;
    case tta::SlotVerdict::kCorrect:
      return;
  }
  note(s);
}

void Agent::on_overflow(platform::PortId port, tta::RoundId round) {
  const auto& pc = system_.plan().port(port);
  // The diagnostic vnet polices itself; feeding its overflows back in
  // would create a symptom->overflow->symptom loop.
  if (pc.vnet == platform::kDiagnosticVnet) return;
  Symptom s;
  s.type = SymptomType::kQueueOverflow;
  s.observer = component_;
  s.subject_component = component_;
  s.subject_job = pc.owner;
  s.round = round;
  s.magnitude = 1.0;
  note(s);
}

void Agent::on_sent(const vnet::Message& msg, tta::RoundId round) {
  last_sent_[msg.port] = round;
  const auto spec = specs_.find(msg.port);
  if (!spec) return;
  if (msg.value >= spec->min_value && msg.value <= spec->max_value) return;
  Symptom s;
  s.type = SymptomType::kValueOutOfRange;
  s.observer = component_;
  s.subject_component = component_;
  s.subject_job = msg.sender;
  s.round = round;
  s.magnitude = msg.value > spec->max_value ? msg.value - spec->max_value
                                            : spec->min_value - msg.value;
  note(s);
}

void Agent::flush(platform::JobContext& ctx) {
  const tta::RoundId round = ctx.round();

  // LIF temporal monitor: has any locally hosted, spec'd port gone silent
  // beyond its gap tolerance?
  for (const auto& pc : system_.plan().ports()) {
    if (pc.vnet == platform::kDiagnosticVnet) continue;
    if (system_.job(pc.owner).host() != component_) continue;
    const auto spec = specs_.find(pc.id);
    if (!spec || spec->period_rounds == 0) continue;
    const tta::RoundId last = last_sent_.contains(pc.id) ? last_sent_[pc.id] : 0;
    const auto limit = static_cast<tta::RoundId>(spec->period_rounds) *
                       spec->gap_tolerance_periods;
    if (round > last + limit) {
      // Rate-limit to one report per tolerance window.
      auto& last_report = last_gap_report_[pc.id];
      if (round >= last_report + limit) {
        last_report = round;
        Symptom s;
        s.type = SymptomType::kMessageGap;
        s.observer = component_;
        s.subject_component = component_;
        s.subject_job = pc.owner;
        s.round = round;
        s.magnitude = static_cast<double>(round - last);
        note(s);
      }
    }
  }

  // Promote the previous round's coalesced symptoms.
  if (!this_round_.empty() && coalesce_round_ < round) {
    for (auto& [key, sym] : this_round_) pending_.push_back(sym);
    this_round_.clear();
  }

  std::size_t sent = 0;

  // Heartbeat first: the assessor's staleness watchdog must keep being
  // fed even when the component is perfectly healthy — its absence is the
  // one signal that survives every agent-death mode.
  if (p_.hardening && (last_heartbeat_ == 0 || round >= last_heartbeat_ + p_.heartbeat_period)) {
    if (fp_ && fp_->hit(fault::FaultSite::kHeartbeatSend)) {
      // Heartbeat lost at the send instant: the agent believes it fed the
      // watchdog (the period restarts) but nothing reaches the wire.
      last_heartbeat_ = round;
    } else {
      Heartbeat hb;
      hb.symptoms_detected = detected_;
      hb.symptoms_dropped = static_cast<std::uint32_t>(
          dropped_ > 0xFFFFFFFFu ? 0xFFFFFFFFu : dropped_);
      const vnet::Message m = encode_heartbeat(hb, round);
      if (hierarchical()) {
        // Heartbeats feed the staleness watchdogs of this component's own
        // testers — nobody else keeps channel state for it.
        const std::size_t copies = route(ctx, m, component_);
        if (copies > 0) {
          last_heartbeat_ = round;
          ++heartbeats_;
          heartbeats_metric_.inc();
          sent += copies;
        }
      } else if (ctx.send(port_, m.value, m.kind, m.aux)) {
        last_heartbeat_ = round;
        ++heartbeats_;
        heartbeats_metric_.inc();
        ++sent;
      }
    }
  }

  // Flush under the diagnostic vnet's real bandwidth: excess stays pending.
  while (!pending_.empty() && sent < 16) {
    const Symptom& s = pending_.front();
    const vnet::Message m = encode(s, round);
    if (hierarchical()) {
      // Routed by subject: only the FRU's current testers receive the
      // symptom, so per-symptom traffic is the tester-set size (log A + 1)
      // instead of the assessor count.
      const std::size_t copies = route(ctx, m, s.subject_component);
      if (copies == 0) break;  // all destination queues full
      sent += copies;
    } else {
      if (!ctx.send(port_, m.value, m.kind, m.aux)) break;  // queue full
      ++sent;
    }
    // Resend-push fault site: firing means this symptom never enters the
    // retransmission buffer — its original send is its only chance.
    if (p_.hardening && p_.max_resends > 0 &&
        !(fp_ && fp_->hit(fault::FaultSite::kResendPush))) {
      resend_.push_back(Resend{s, round + p_.resend_backoff, 1});
      while (resend_.size() > p_.resend_buffer) resend_.pop_front();
    }
    pending_.pop_front();
  }

  // Retransmissions with exponential backoff: a lost original becomes a
  // duplicate at the assessor (deduplicated there by observation key)
  // instead of a hole in the evidence. Spare bandwidth only.
  if (p_.hardening) {
    for (auto& r : resend_) {
      if (sent >= 16) break;
      if (r.sends > p_.max_resends || round < r.due) continue;
      const vnet::Message m = encode(r.s, round);
      if (hierarchical()) {
        // Resends re-route through the *current* tester set, so a symptom
        // whose testers were reassigned mid-backoff still lands where the
        // evidence is now being kept.
        const std::size_t copies = route(ctx, m, r.s.subject_component);
        if (copies == 0) break;
        sent += copies - 1;  // loop header adds the final +1 below
      } else if (!ctx.send(port_, m.value, m.kind, m.aux)) {
        break;
      }
      trace_symptom(r.s, "resend");
      ++sent;
      ++resent_;
      retransmissions_metric_.inc();
      r.due = round + (p_.resend_backoff << r.sends);
      ++r.sends;
    }
    while (!resend_.empty() && resend_.front().sends > p_.max_resends) {
      resend_.pop_front();
    }
  }
}

}  // namespace decos::diag
