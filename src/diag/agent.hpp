// Per-component diagnostic agent.
//
// The detection stage of the three-step diagnostic architecture (detect ->
// disseminate -> analyse, Section II-D). The agent hooks the local
// observability points of its component:
//   * the TTA node's slot observations (transport verdicts about remote
//     senders),
//   * the multiplexer's queue-overflow events,
//   * the sender-side LIF monitor (every message the component puts on a
//     vnet, checked against the port's value/period spec).
// Detected symptoms are coalesced per round and flushed as messages on the
// virtual diagnostic network by the agent's own job, so dissemination
// competes for real bandwidth and arrives with real latency — no probe
// effect on the application vnets, exactly as the paper requires.
//
// The symptom stream itself runs over the same fallible cluster it
// monitors, so the agent hardens its own channel: a periodic heartbeat
// keeps the assessor's staleness watchdog fed even when nothing is wrong,
// and a small bounded resend buffer retransmits recent symptoms with
// exponential backoff — loss on the diagnostic vnet becomes duplicates
// (deduplicated at the assessor) instead of silently missing evidence.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "diag/port_spec.hpp"
#include "diag/symptom.hpp"
#include "diag/topology.hpp"
#include "fault/faultpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "platform/system.hpp"

namespace decos::diag {

class Agent {
 public:
  struct Params {
    /// Master switch for the channel hardening (heartbeats + resends).
    /// Off reproduces the pre-hardening agent, for ablation runs.
    bool hardening = true;
    /// Rounds between heartbeats on the symptom port.
    tta::RoundId heartbeat_period = 8;
    /// Recently sent symptoms retained for retransmission.
    std::size_t resend_buffer = 32;
    /// Retransmissions per symptom beyond the first send.
    std::uint32_t max_resends = 2;
    /// Rounds until the first retransmission; doubles per resend.
    tta::RoundId resend_backoff = 8;
  };

  /// Creates the agent job on `component` inside `diag_das` and installs
  /// all hooks. `assessors` are the jobs subscribed to this agent's
  /// symptom port.
  Agent(platform::System& system, platform::DasId diag_das,
        platform::ComponentId component, const SpecTable& specs,
        const std::vector<platform::JobId>& assessors, Params params);
  /// Default-parameter convenience (hardening on).
  Agent(platform::System& system, platform::DasId diag_das,
        platform::ComponentId component, const SpecTable& specs,
        const std::vector<platform::JobId>& assessors);

  [[nodiscard]] platform::ComponentId component() const { return component_; }
  [[nodiscard]] platform::JobId job_id() const { return job_id_; }
  [[nodiscard]] platform::PortId symptom_port() const { return port_; }

  /// Symptoms detected but not yet flushed (inspection/testing).
  [[nodiscard]] std::size_t backlog() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t symptoms_detected() const { return detected_; }
  /// Symptoms dropped from the bounded backlog (evidence loss at source).
  [[nodiscard]] std::uint64_t symptoms_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t heartbeats_sent() const { return heartbeats_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return resent_; }
  [[nodiscard]] const Params& params() const { return p_; }

  /// Attaches the fault-point registry (not owned; nullptr detaches): the
  /// heartbeat-send and resend-push edges become enumerable injection
  /// sites. DiagnosticService::bind_fault_points wires every agent.
  void bind_fault_points(fault::FaultPointRegistry* fp) { fp_ = fp; }

  /// Switches the agent to hierarchy routing: instead of multicasting on
  /// the shared symptom port, each flushed message is unicast to the
  /// *current testers* of its routing key (the subject component;
  /// heartbeats key on the agent's own component). `view` is the
  /// service's overlay view (not owned, refreshed by the service each
  /// round); `tester_ports[p]` is this agent's unicast port to the
  /// assessor at cube position p. Traffic becomes O(log A) per symptom
  /// instead of O(A) — the tentpole scaling change.
  void enable_hierarchy(const HierarchyTopology* view,
                        std::vector<platform::PortId> tester_ports);
  [[nodiscard]] bool hierarchical() const { return topo_ != nullptr; }

 private:
  void on_observation(const tta::SlotObservation& obs);
  void on_overflow(platform::PortId port, tta::RoundId round);
  void on_sent(const vnet::Message& msg, tta::RoundId round);
  void flush(platform::JobContext& ctx);
  void note(Symptom s);
  /// Records a kSymptom provenance event against the journey owning the
  /// symptom's subject FRU (job first, else component). Single-branch
  /// no-op when tracing is off.
  void trace_symptom(const Symptom& s, std::string_view detail);

  platform::System& system_;
  platform::ComponentId component_;
  const SpecTable& specs_;
  Params p_;
  obs::ProvenanceTracer* prov_ = nullptr;
  fault::FaultPointRegistry* fp_ = nullptr;
  /// Cached span entity label ("agent.N") so the hot path never builds it.
  std::string entity_;
  platform::JobId job_id_ = platform::kInvalidJob;
  platform::PortId port_ = 0;

  /// Hierarchy routing state (see enable_hierarchy).
  const HierarchyTopology* topo_ = nullptr;
  std::vector<platform::PortId> tester_ports_;
  /// Sends one encoded message to every current tester of `subject`;
  /// returns the number of unicast sends that were accepted (0 means
  /// every destination queue pushed back — retry next round).
  std::size_t route(platform::JobContext& ctx, const vnet::Message& m,
                    platform::ComponentId subject);

  /// Coalescing: at most one symptom per (type, subject component, subject
  /// job) per round; repeats bump the magnitude (occurrence count or max
  /// deviation).
  struct Key {
    SymptomType type;
    platform::ComponentId subj_c;
    platform::JobId subj_j;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, Symptom> this_round_;
  tta::RoundId coalesce_round_ = 0;
  /// Flush order is FIFO and the backlog trim drops from the front, so a
  /// deque gives O(1) at both ends (the vector it replaces paid O(n) per
  /// flushed symptom).
  std::deque<Symptom> pending_;
  std::uint64_t detected_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t heartbeats_ = 0;
  std::uint64_t resent_ = 0;

  /// Resend buffer: symptoms already sent once, awaiting their backoff
  /// retransmissions. Bounded; oldest entries fall off first.
  struct Resend {
    Symptom s;
    tta::RoundId due = 0;
    std::uint32_t sends = 1;  // transmissions so far (1 = original)
  };
  std::deque<Resend> resend_;
  tta::RoundId last_heartbeat_ = 0;

  /// LIF temporal monitor: last round each local port was seen sending.
  std::map<platform::PortId, tta::RoundId> last_sent_;
  std::map<platform::PortId, tta::RoundId> last_gap_report_;

  // Cluster-wide aggregates (all agents of one simulator share the cells).
  obs::Counter heartbeats_metric_;
  obs::Counter retransmissions_metric_;
  obs::Counter dropped_metric_;
  obs::Counter fanout_metric_;
};

}  // namespace decos::diag
