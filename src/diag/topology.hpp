// VCube-style diagnostic overlay topology (Duarte et al., PAPERS.md).
//
// The hierarchical diagnosis mode organises the assessor-capable hosts as
// a virtual hypercube. Each FRU (keyed by its hosting component) is
// monitored by a *logarithmic* tester set instead of by every assessor:
// its home position h(c) = c mod A, plus the first fault-free member of
// each VCube cluster c(h, s) for s = 1..d, where d = ceil(log2 A). The
// clusters partition the non-home positions, so a FRU is orphaned only
// when every position is dead — diagnosis survives k < d+1 assessor
// deaths by construction, with no promotion protocol.
//
// The topology is a pure function of (host list, liveness vector): every
// node that feeds the same membership view into update() computes the
// same cube, the same tester sets and the same responsible tester — no
// agreement rounds needed. Assessors recompute locally on membership
// change; the tester-reassignment fault site models one side lagging a
// recompute behind the other.
//
// Positions beyond the real host count (non-power-of-two cubes) are
// treated as permanently dead virtual nodes: the first-fault-free walk
// skips them exactly like crashed hosts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "platform/types.hpp"

namespace decos::diag {

class HierarchyTopology {
 public:
  /// Index into the assessor host list (primary = 0). Doubles as the
  /// hypercube address.
  using Position = std::uint32_t;

  HierarchyTopology() = default;

  /// `hosts[i]` is the component hosting the assessor at position i, in
  /// the service's replica-priority order. All positions start alive.
  HierarchyTopology(std::vector<platform::ComponentId> hosts,
                    std::uint32_t component_count);

  /// Recomputes tester sets and cube edges from the per-position liveness
  /// vector. Returns true when the view actually changed (and a recompute
  /// happened); identical views are a no-op, so callers can feed their
  /// membership view in every round.
  bool update(const std::vector<bool>& alive);

  /// True when `alive` differs from the current view (update would
  /// recompute). Lets the tester-reassignment fault site defer the
  /// recompute without mutating state.
  [[nodiscard]] bool would_change(const std::vector<bool>& alive) const {
    return alive != alive_;
  }

  [[nodiscard]] std::uint32_t positions() const {
    return static_cast<std::uint32_t>(hosts_.size());
  }
  /// Cube dimension d = ceil(log2 positions); 0 for a single position.
  [[nodiscard]] std::uint32_t dimension() const { return dim_; }
  [[nodiscard]] platform::ComponentId host(Position p) const {
    return hosts_.at(p);
  }
  [[nodiscard]] std::optional<Position> position_of(
      platform::ComponentId host) const;
  [[nodiscard]] bool alive(Position p) const {
    return p < alive_.size() && alive_[p];
  }
  [[nodiscard]] std::uint64_t recomputes() const { return recomputes_; }

  /// Home position of the FRUs hosted on component `c`.
  [[nodiscard]] Position home(platform::ComponentId c) const {
    return c % positions();
  }

  /// Tester set of component `c`'s FRUs, in priority order: the home
  /// position first (if alive), then the first alive member of each
  /// cluster c(home, s), s = 1..d. Empty only when every position is dead.
  [[nodiscard]] const std::vector<Position>& testers(
      platform::ComponentId c) const {
    return testers_.at(c);
  }
  [[nodiscard]] bool is_tester(Position p, platform::ComponentId c) const {
    return p < 64 && ((tester_masks_.at(c) >> p) & 1u) != 0;
  }
  /// The composing tester of `c` (first in priority order); nullopt when
  /// every position is dead.
  [[nodiscard]] std::optional<Position> responsible(
      platform::ComponentId c) const {
    const auto& t = testers_.at(c);
    if (t.empty()) return std::nullopt;
    return t.front();
  }

  /// Alive hypercube neighbours of `p` ({p xor 2^s} for s < d); empty when
  /// `p` itself is dead.
  [[nodiscard]] const std::vector<Position>& neighbors(Position p) const {
    return neighbors_.at(p);
  }
  /// Whether `a` and `b` share a cube edge and both ends are alive — the
  /// acceptance test for disseminated verdict deltas.
  [[nodiscard]] bool are_neighbors(Position a, Position b) const;

 private:
  void recompute();
  /// First alive member of cluster c(i, s), walking the VCube order
  /// (i xor 2^(s-1), then its sub-clusters). Returns nullopt when the
  /// whole cluster is dead.
  [[nodiscard]] std::optional<Position> first_alive_in_cluster(
      Position i, std::uint32_t s) const;

  std::vector<platform::ComponentId> hosts_;
  std::uint32_t component_count_ = 0;
  std::uint32_t dim_ = 0;
  std::vector<bool> alive_;
  std::vector<std::vector<Position>> testers_;    // per component
  std::vector<std::uint64_t> tester_masks_;       // per component, bit = position
  std::vector<std::vector<Position>> neighbors_;  // per position
  std::uint64_t recomputes_ = 0;
};

}  // namespace decos::diag
