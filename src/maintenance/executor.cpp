#include "maintenance/executor.hpp"

#include <cmath>
#include <string>

#include "sim/trace.hpp"
#include "tta/node.hpp"

namespace decos::maintenance {

const char* to_string(WorkOrderState s) {
  switch (s) {
    case WorkOrderState::kScheduled: return "scheduled";
    case WorkOrderState::kVerifying: return "verifying";
    case WorkOrderState::kVerified: return "verified";
    case WorkOrderState::kQuarantined: return "quarantined";
  }
  return "?";
}

MaintenanceExecutor::MaintenanceExecutor(platform::System& system,
                                         diag::DiagnosticService& service,
                                         fault::FaultInjector& injector,
                                         Params params)
    : system_(system), service_(service), injector_(injector),
      p_(params), sim_(system.simulator()),
      pristine_vnets_(system.plan().vnets()), spares_(params.spares) {}

void MaintenanceExecutor::start() {
  if (started_) return;
  started_ = true;
  sim_.metrics().gauge("maint.spare_pool").set(static_cast<double>(spares_));
  poll_timer_.start(sim_, sim_.now() + p_.poll_period, p_.poll_period,
                    [this] {
                      poll();
                      return true;
                    });
}

bool MaintenanceExecutor::has_open_order(
    platform::ComponentId c, std::optional<platform::JobId> j) const {
  for (const WorkOrder& o : orders_) {
    if (o.is_open() && o.component == c && o.job == j) return true;
  }
  return false;
}

double MaintenanceExecutor::fru_trust(const WorkOrder& o) const {
  // Composed service accessors: the active assessor in legacy mode, the
  // FRU's serving tester (or its disseminated verdict) in hierarchy mode.
  return o.job ? service_.job_trust(*o.job)
               : service_.component_trust(o.component);
}

fault::FaultClass MaintenanceExecutor::rediagnose(const WorkOrder& o) const {
  return (o.job ? service_.diagnose_job(*o.job)
                : service_.diagnose_component(o.component))
      .cls;
}

void MaintenanceExecutor::poll() {
  const double threshold =
      service_.assessor().params().trust.report_threshold;
  for (const diag::FruReport& row : service_.report()) {
    if (row.trust >= threshold) continue;
    // Quarantined hardware is retired: neither the component row nor the
    // rows of jobs stranded on it can be serviced any more.
    if (quarantined_components_.contains(row.component)) continue;
    if (row.job && quarantined_jobs_.contains(*row.job)) continue;
    if (has_open_order(row.component, row.job)) continue;
    if (analysis::decide(p_.strategy, row.diagnosis.cls) ==
        fault::MaintenanceAction::kNoAction) {
      continue;
    }
    WorkOrder o;
    o.fru = row.fru;
    o.component = row.component;
    o.job = row.job;
    o.first_diagnosis = row.diagnosis.cls;
    o.opened = sim_.now();
    auto& prov = sim_.provenance();
    if (prov.enabled()) {
      if (o.job) o.provenance = prov.journey_for_job(*o.job);
      if (o.provenance == obs::kNoJourney) {
        o.provenance = prov.journey_for_component(o.component);
      }
      prov.event(o.provenance, obs::ProvStage::kAction, o.fru,
                 "work order opened");
    }
    const std::size_t idx = orders_.size();
    orders_.push_back(std::move(o));
    sim_.metrics().counter("maint.work_orders").inc();
    sim_.log(sim::TraceCategory::kMaintenance, orders_[idx].fru,
             std::string("work order opened: ") +
                 fault::to_string(row.diagnosis.cls));
    sim_.schedule_after(p_.technician_latency,
                        [this, idx] { execute(idx); });
  }
}

void MaintenanceExecutor::execute(std::size_t idx) {
  WorkOrder& o = orders_[idx];
  if (o.state == WorkOrderState::kQuarantined) return;

  // First attempt: the configured garage strategy applied to the opening
  // diagnosis. Retries: a fresh second opinion over the accumulated
  // evidence, always mapped through Fig. 11 — by the time a repair has
  // visibly failed, the recurring symptom pattern is richer than what the
  // first visit saw. A retry whose re-diagnosis comes back clean falls
  // back to Fig. 11 on the opening class (repeat the prescribed action).
  fault::MaintenanceAction action;
  if (o.attempts == 0) {
    action = analysis::decide(p_.strategy, o.first_diagnosis);
  } else {
    fault::FaultClass cls = rediagnose(o);
    if (cls == fault::FaultClass::kNone) cls = o.first_diagnosis;
    action = fault::action_for(cls);
  }
  ++o.attempts;
  if (o.attempts > 1) {
    ++retries_;
    sim_.metrics().counter("maint.retries").inc();
  }

  if (action == fault::MaintenanceAction::kReplaceComponent) {
    // Spare-allocation fault site: reached once per real allocation.
    // Firing means the pulled unit is dead on arrival — it is discarded
    // (consumed without being installed) and the technician pulls again,
    // so a DOA on the last spare turns into a quarantine below.
    if (spares_ > 0 && fp_ && fp_->hit(fault::FaultSite::kSpareAlloc)) {
      --spares_;
      ++spares_consumed_;
      sim_.metrics().gauge("maint.spare_pool").set(static_cast<double>(spares_));
      sim_.log(sim::TraceCategory::kMaintenance, o.fru,
               "spare dead on arrival, pulling another");
    }
    if (spares_ == 0) {
      sim_.metrics().counter("maint.spares_exhausted").inc();
      sim_.log(sim::TraceCategory::kMaintenance, o.fru,
               "replacement needed but spare pool is empty");
      quarantine(o);
      return;
    }
    --spares_;
    ++spares_consumed_;
    sim_.metrics().gauge("maint.spare_pool").set(static_cast<double>(spares_));
  }

  o.open_span = sim_.provenance().begin_span(
      o.provenance, obs::ProvStage::kAction, o.fru, fault::to_string(action));
  o.actions.push_back(action);
  ++attempted_;
  sim_.metrics()
      .counter("maint.repairs",
               std::string("action=") + fault::to_string(action))
      .inc();

  // Score the executed action against the ground truth *now* — the truth
  // the bench test would see when the pulled unit arrives at the OEM.
  const fault::FaultClass truth = o.job
                                      ? injector_.truth_for_job(*o.job)
                                      : injector_.truth_for_component(o.component);
  nff_.record(truth, action);
  if (fault::evaluate_action(truth, action).unnecessary_removal) {
    o.nff = true;
    ++nff_removals_;
    sim_.metrics().counter("maint.nff_removals").inc();
    sim_.log(sim::TraceCategory::kMaintenance, o.fru,
             "removed hardware retests OK (NFF removal)");
    sim_.provenance().event(o.provenance, obs::ProvStage::kAction, o.fru,
                            "nff removal");
  }

  perform(o, action);
  o.state = WorkOrderState::kVerifying;
  sim_.log(sim::TraceCategory::kMaintenance, o.fru,
           std::string("executed ") + fault::to_string(action) +
               " (attempt " + std::to_string(o.attempts) + ")");

  // The replacement re-integrates (clock snap + listen-only rounds) before
  // the verification clock starts: reset trust after the settle, then the
  // reset trust must hold through the verification window.
  sim_.schedule_after(p_.settle, [this, idx] {
    WorkOrder& order = orders_[idx];
    if (order.state != WorkOrderState::kVerifying) return;
    // Repair-settle fault site: firing loses the post-settle trust reset,
    // so the verification window judges the repair on the FRU's
    // pre-repair trust trajectory (it recovers the slow way or fails and
    // retries).
    if (fp_ && fp_->hit(fault::FaultSite::kRepairSettle)) return;
    if (order.job) {
      service_.reset_job_trust(*order.job);
    } else {
      service_.reset_component_trust(order.component);
    }
  });
  sim_.schedule_after(p_.settle + p_.verify_window,
                      [this, idx] { verify(idx); });
}

void MaintenanceExecutor::perform(WorkOrder& o,
                                  fault::MaintenanceAction action) {
  switch (action) {
    case fault::MaintenanceAction::kReplaceComponent: {
      // New board: persistent component faults leave with the old unit,
      // the replacement's controls are pristine, its crystal is in spec,
      // and the node re-integrates with state synchronisation.
      injector_.apply_action(o.component, std::nullopt, action);
      tta::TtaNode& node = system_.cluster().node(o.component);
      node.faults() = tta::FaultControls{};
      node.clock().set_drift_ppm(p_.replacement_drift_ppm);
      node.restart();
      break;
    }
    case fault::MaintenanceAction::kInspectConnector: {
      // Re-seating the connector ends any in-flight episode; whether the
      // intermittent process itself stops is judged by the ground truth
      // (inspection cures a borderline fault, nothing else).
      injector_.apply_action(o.component, std::nullopt, action);
      tta::FaultControls& fc = system_.cluster().node(o.component).faults();
      fc.rx_corrupt_prob = 0.0;
      fc.rx_drop_prob = 0.0;
      break;
    }
    case fault::MaintenanceAction::kSoftwareUpdate: {
      if (!o.job) break;
      injector_.apply_action(o.component, o.job, action);
      platform::Job& job = system_.job(*o.job);
      platform::SoftwareFaultControls& sw = job.sw_faults();
      sw.crashed = false;
      sw.heisenbug_prob = 0.0;
      sw.bohrbug_trigger = nullptr;
      break;
    }
    case fault::MaintenanceAction::kInspectTransducer: {
      if (!o.job) break;
      injector_.apply_action(o.component, o.job, action);
      platform::Job& job = system_.job(*o.job);
      for (std::size_t s = 0; s < job.sensor_count(); ++s) {
        job.sensor(s).set_fault(platform::SensorFaultMode::kHealthy,
                                sim_.now());
      }
      for (std::size_t a = 0; a < job.actuator_count(); ++a) {
        job.actuator(a).set_fault(platform::ActuatorFaultMode::kHealthy);
      }
      break;
    }
    case fault::MaintenanceAction::kUpdateConfiguration: {
      if (!o.job) break;
      injector_.apply_action(o.component, o.job, action);
      // Restore the as-designed resource records of every vnet the job
      // sends on (the misconfigured queue/budget sizing).
      for (const vnet::PortConfig& pc : system_.plan().ports()) {
        if (pc.owner != *o.job) continue;
        system_.plan().mutable_vnet(pc.vnet) = pristine_vnets_.at(pc.vnet);
      }
      break;
    }
    case fault::MaintenanceAction::kNoAction:
      break;
  }
}

void MaintenanceExecutor::verify(std::size_t idx) {
  WorkOrder& o = orders_[idx];
  if (o.state != WorkOrderState::kVerifying) return;
  // Repair-verify fault site: firing defers the verdict by one more full
  // verification window (the technician's conformance check is postponed,
  // the repair stays in kVerifying meanwhile).
  if (fp_ && fp_->hit(fault::FaultSite::kRepairVerify)) {
    sim_.schedule_after(p_.verify_window, [this, idx] { verify(idx); });
    return;
  }
  const double trust = fru_trust(o);
  if (trust >= p_.verify_trust) {
    o.state = WorkOrderState::kVerified;
    o.closed = sim_.now();
    sim_.provenance().end_span(o.open_span, obs::ProvOutcome::kRepaired);
    sim_.provenance().set_terminal(o.provenance, obs::ProvOutcome::kRepaired);
    ++verified_;
    sim_.metrics().counter("maint.repairs_verified").inc();
    sim_.metrics().histogram("maint.ttr_us").record((o.closed - o.opened).ns() /
                                                    1000);
    sim_.log(sim::TraceCategory::kMaintenance, o.fru,
             "repair verified, trust reconverged");
    return;
  }
  ++failed_;
  sim_.provenance().end_span(o.open_span, o.nff ? obs::ProvOutcome::kNff
                                                : obs::ProvOutcome::kRetried);
  sim_.metrics().counter("maint.repair_failures").inc();
  sim_.log(sim::TraceCategory::kMaintenance, o.fru,
           "repair did not take (trust " + std::to_string(trust) + ")");
  if (o.attempts >= p_.max_attempts) {
    quarantine(o);
    return;
  }
  // Exponential backoff: the garage escalates, it does not hammer.
  const double scale = std::pow(p_.backoff_factor,
                                static_cast<double>(o.attempts - 1));
  const sim::Duration delay{static_cast<std::int64_t>(
      static_cast<double>(p_.technician_latency.ns()) * scale)};
  o.state = WorkOrderState::kScheduled;
  sim_.schedule_after(delay, [this, idx] { execute(idx); });
}

void MaintenanceExecutor::quarantine(WorkOrder& o) {
  o.state = WorkOrderState::kQuarantined;
  o.closed = sim_.now();
  sim_.provenance().end_span(o.open_span, obs::ProvOutcome::kQuarantined);
  sim_.provenance().set_terminal(o.provenance, obs::ProvOutcome::kQuarantined);
  ++quarantines_;
  sim_.metrics().counter("maint.quarantined").inc();
  service_.assert_external_ona(o.component, "maintenance-degraded");
  sim_.log(sim::TraceCategory::kMaintenance, o.fru,
           "quarantined unrepaired (maintenance-degraded)");
  if (o.job) {
    quarantined_jobs_.insert(*o.job);
    degraded_jobs_.push_back(*o.job);
  } else {
    quarantined_components_.insert(o.component);
    // Every application job stranded on the unrepairable hardware is
    // degraded with it.
    for (platform::JobId j = 0;
         j < static_cast<platform::JobId>(system_.job_count()); ++j) {
      if (system_.job(j).host() != o.component) continue;
      if (service_.is_diagnostic_job(j)) continue;
      degraded_jobs_.push_back(j);
    }
  }
  sim_.metrics().gauge("maint.degraded_jobs")
      .set(static_cast<double>(degraded_jobs_.size()));
}

}  // namespace decos::maintenance
