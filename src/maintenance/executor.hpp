// Closed-loop maintenance: execute the Fig. 11 actions inside the
// simulation.
//
// The paper stops where the maintenance report is handed to the service
// technician; this module *is* the technician. The MaintenanceExecutor
// polls the DiagnosticService's report, opens a work order for every FRU
// whose trust fell below the report threshold, and performs the chosen
// action on the simulated system after a technician latency: software
// update (job reset), hardware replacement from a bounded spare pool
// (with TtaNode re-integration), transducer swap, connector re-seating,
// or configuration restore.
//
// Every repair is verified: the FRU's trust is maintenance-reset once the
// replaced node has settled, and must hold above the conformance
// threshold for a verification window. A repair that fails to take is
// retried with exponential backoff, re-diagnosing from the — by then
// richer — evidence, so a wrong first action (the mis-classification
// cost) is recorded as an observable action trajectory. Executed hardware
// removals are scored against the injector's ground truth, turning NFF
// removals into a *measured* quantity. When the spare pool runs dry the
// FRU is quarantined, the `maintenance-degraded` meta-ONA is raised on
// its report row, and the DAS jobs depending on the unrepairable
// hardware are marked degraded.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/nff.hpp"
#include "diag/service.hpp"
#include "fault/injector.hpp"
#include "fault/taxonomy.hpp"
#include "platform/system.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "vnet/network_plan.hpp"

namespace decos::maintenance {

enum class WorkOrderState : std::uint8_t {
  kScheduled,    // technician dispatched, action not yet performed
  kVerifying,    // action performed, trust under observation
  kVerified,     // trust held above the conformance threshold
  kQuarantined,  // spares or attempts exhausted; FRU retired unrepaired
};

[[nodiscard]] const char* to_string(WorkOrderState s);

/// One maintenance case, from the report row that opened it to the
/// verified repair (or quarantine) that closed it.
struct WorkOrder {
  std::string fru;
  platform::ComponentId component = 0;
  /// Set when the order targets a software FRU.
  std::optional<platform::JobId> job;
  /// Classification at opening time (drives the first attempt's action).
  fault::FaultClass first_diagnosis = fault::FaultClass::kNone;
  /// Every action actually executed, in order. A mis-classified fault
  /// reads directly off this as wrong-action-then-retry.
  std::vector<fault::MaintenanceAction> actions;
  std::uint32_t attempts = 0;
  /// Some attempt pulled hardware that was not internally faulty — the
  /// unit retests OK at the bench (a measured NFF removal).
  bool nff = false;
  sim::SimTime opened{};
  sim::SimTime closed{};
  WorkOrderState state = WorkOrderState::kScheduled;
  /// Journey of the injected fault this order discharges (kNoJourney when
  /// tracing is off or no ledger fault owns the FRU).
  obs::ProvenanceId provenance = obs::kNoJourney;
  /// Action span of the attempt currently executing/verifying.
  obs::SpanId open_span = obs::kNoSpan;

  [[nodiscard]] bool is_open() const {
    return state == WorkOrderState::kScheduled ||
           state == WorkOrderState::kVerifying;
  }
};

class MaintenanceExecutor {
 public:
  struct Params {
    /// How often the executor consults the maintenance report.
    sim::Duration poll_period = sim::milliseconds(10);
    /// Delay between opening a work order and the technician performing
    /// the action (travel + bench time, compressed to simulation scale).
    sim::Duration technician_latency = sim::milliseconds(40);
    /// Retry delay multiplier: attempt k waits latency * factor^(k-1).
    double backoff_factor = 2.0;
    /// Settle time after the action before the trust reset: a replaced
    /// node re-integrates listen-only and its omissions must not poison
    /// the fresh trust of the new unit.
    sim::Duration settle = sim::milliseconds(60);
    /// How long the reset trust must hold for the repair to count.
    sim::Duration verify_window = sim::milliseconds(600);
    /// Conformance threshold the repaired FRU must hold (Fig. 9's
    /// healthy band).
    double verify_trust = 0.9;
    /// Hardware spare pool shared by all component replacements.
    std::uint32_t spares = 2;
    /// Attempts before the FRU is quarantined as unrepairable.
    std::uint32_t max_attempts = 4;
    /// How the first attempt chooses its action; retries always re-
    /// diagnose and follow Fig. 11 (the second opinion is model-guided).
    analysis::Strategy strategy = analysis::Strategy::kModelGuided;
    /// Crystal drift of replacement hardware, ppm (well inside spec).
    double replacement_drift_ppm = 5.0;
  };

  MaintenanceExecutor(platform::System& system, diag::DiagnosticService& service,
                      fault::FaultInjector& injector, Params params);

  /// Arms the periodic maintenance loop (first poll one period from now).
  void start();

  // --- results -----------------------------------------------------------
  [[nodiscard]] const std::vector<WorkOrder>& work_orders() const {
    return orders_;
  }
  [[nodiscard]] std::uint64_t repairs_attempted() const { return attempted_; }
  [[nodiscard]] std::uint64_t repairs_verified() const { return verified_; }
  [[nodiscard]] std::uint64_t repairs_failed() const { return failed_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// Executed removals of hardware that retests OK (measured NFF).
  [[nodiscard]] std::uint64_t nff_removals() const { return nff_removals_; }
  [[nodiscard]] std::uint32_t spares_left() const { return spares_; }
  [[nodiscard]] std::uint64_t spares_consumed() const {
    return spares_consumed_;
  }
  [[nodiscard]] std::uint64_t quarantines() const { return quarantines_; }
  [[nodiscard]] bool quarantined_component(platform::ComponentId c) const {
    return quarantined_components_.contains(c);
  }
  [[nodiscard]] bool quarantined_job(platform::JobId j) const {
    return quarantined_jobs_.contains(j);
  }
  /// Application jobs marked degraded because their FRU (or its host
  /// hardware) was quarantined unrepaired.
  [[nodiscard]] const std::vector<platform::JobId>& degraded_jobs() const {
    return degraded_jobs_;
  }
  /// Garage-visit ledger of every executed action, scored against the
  /// injector's ground truth at execution time.
  [[nodiscard]] const analysis::NffAccounting& nff() const { return nff_; }
  [[nodiscard]] const Params& params() const { return p_; }

  /// Attaches the fault-point registry (not owned; nullptr detaches): the
  /// spare-allocation, repair-settle and repair-verify edges become
  /// enumerable injection sites.
  void bind_fault_points(fault::FaultPointRegistry* fp) { fp_ = fp; }

 private:
  void poll();
  /// Performs attempt `attempts_+1` of order `idx` (technician arrives).
  void execute(std::size_t idx);
  /// Judges order `idx` at the end of its verification window.
  void verify(std::size_t idx);
  /// Applies the physical repair to the simulated system.
  void perform(WorkOrder& o, fault::MaintenanceAction action);
  void quarantine(WorkOrder& o);
  [[nodiscard]] bool has_open_order(platform::ComponentId c,
                                    std::optional<platform::JobId> j) const;
  [[nodiscard]] double fru_trust(const WorkOrder& o) const;
  [[nodiscard]] fault::FaultClass rediagnose(const WorkOrder& o) const;

  platform::System& system_;
  diag::DiagnosticService& service_;
  fault::FaultInjector& injector_;
  Params p_;
  sim::Simulator& sim_;
  fault::FaultPointRegistry* fp_ = nullptr;
  /// Network-plan state as configured (before any configuration fault);
  /// kUpdateConfiguration restores from here.
  std::vector<vnet::VnetConfig> pristine_vnets_;

  std::vector<WorkOrder> orders_;
  std::set<platform::ComponentId> quarantined_components_;
  std::set<platform::JobId> quarantined_jobs_;
  std::vector<platform::JobId> degraded_jobs_;
  analysis::NffAccounting nff_;

  std::uint32_t spares_;
  std::uint64_t attempted_ = 0;
  std::uint64_t verified_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t nff_removals_ = 0;
  std::uint64_t spares_consumed_ = 0;
  std::uint64_t quarantines_ = 0;
  bool started_ = false;
  /// Maintenance-report polling loop (intrusive: must outlive its pending
  /// tick, which holding it as a member guarantees).
  sim::PeriodicTimer poll_timer_;
};

}  // namespace decos::maintenance
