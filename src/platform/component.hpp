// The DECOS component (Fig. 2) — the paper's FCR/FRU for hardware faults.
//
// A component couples one TTA communication controller (the node) with an
// application layer hosting jobs of several DASs in separate partitions.
// The component implements the encapsulation glue: at its TDMA send
// instant it dispatches the jobs scheduled this round, drains their port
// queues through the multiplexer under the vnets' bandwidth budgets, packs
// the result into the frame, and loops drained messages back to local
// subscribers; on frame arrival it routes records to hosted receiver jobs.
//
// Because every hosted job shares this node's physical resources, a
// component-internal hardware fault disturbs *all* of them at once — the
// correlation signature Fig. 10's judgement relies on.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "platform/job.hpp"
#include "platform/types.hpp"
#include "sim/simulator.hpp"
#include "tta/node.hpp"
#include "vnet/multiplexer.hpp"
#include "vnet/network_plan.hpp"

namespace decos::platform {

class Component {
 public:
  Component(sim::Simulator& sim, tta::TtaNode& node,
            const vnet::NetworkPlan& plan);

  /// Registers a job as hosted here (its partition). Jobs dispatch in
  /// ascending JobId order within a round.
  void host(Job& job);

  /// Declares an output port whose owner job runs here.
  void host_port(PortId port);

  /// Installs the node callbacks. Call once after all hosting is done.
  void bind();

  [[nodiscard]] ComponentId id() const { return node_.node_id(); }
  [[nodiscard]] tta::TtaNode& node() { return node_; }
  [[nodiscard]] vnet::Multiplexer& mux() { return mux_; }
  [[nodiscard]] const std::map<JobId, Job*>& hosted_jobs() const {
    return jobs_;
  }

  /// Sender-side LIF observation hook: every message this component put
  /// on the (virtual) wire this round. The local diagnostic agent
  /// subscribes here.
  std::function<void(const vnet::Message&, tta::RoundId)> on_message_sent;

  /// Model-based application assertions raised by hosted jobs
  /// (JobContext::report_transducer_anomaly). The local diagnostic agent
  /// subscribes here.
  std::function<void(JobId, double, tta::RoundId)> on_transducer_anomaly;

  /// Last-hop delivery gate: when set, a message reaches a hosted
  /// receiver job only if the filter returns true. Null (the default)
  /// delivers everything. Scenario-level fault instrumentation installs
  /// per-receiver drops here; the platform layer itself stays fault-model
  /// agnostic.
  std::function<bool(const vnet::Message&, JobId receiver)> delivery_filter;

  /// Value-domain corruption of the record as stored in this component's
  /// memory (SEU in a port buffer): when set, every locally delivered
  /// message passes through the mutator before reaching the hosted
  /// receiver jobs — all of them read the same corrupted store. Null (the
  /// default) costs one branch.
  std::function<void(vnet::Message&)> delivery_mutator;

 private:
  void build_payload(tta::RoundId round, std::vector<std::uint8_t>& out);
  void route_local(const vnet::Message& msg);

  sim::Simulator& sim_;
  tta::TtaNode& node_;
  const vnet::NetworkPlan& plan_;
  vnet::Multiplexer mux_;
  std::map<JobId, Job*> jobs_;  // ordered: deterministic dispatch order
  /// Per-port list of *hosted* receiver jobs, precomputed in bind(): the
  /// delivery hot path walks exactly the jobs it will deliver to, instead
  /// of probing the job map once per configured receiver per message.
  std::vector<std::vector<Job*>> local_receivers_;
  /// Round-scratch buffers: cleared every use, capacity kept, so the
  /// steady-state TDMA round allocates nothing on this component.
  std::vector<vnet::Message> drain_scratch_;
  std::vector<vnet::Message> arrival_scratch_;
};

}  // namespace decos::platform
