#include "platform/system.hpp"

#include <cassert>

namespace decos::platform {

System::System(sim::Simulator& sim, Params params)
    : sim_(sim), cluster_(sim, params.cluster) {
  components_.reserve(cluster_.size());
  for (ComponentId c = 0; c < cluster_.size(); ++c) {
    components_.push_back(
        std::make_unique<Component>(sim_, cluster_.node(c), plan_));
  }
  // Vnet 0: the reserved virtual diagnostic network.
  plan_.add_vnet(vnet::VnetConfig{
      .id = kDiagnosticVnet,
      .name = "diagnostic",
      .msgs_per_round_per_node = params.diag_msgs_per_round,
      .queue_depth = params.diag_queue_depth,
  });
}

DasId System::add_das(std::string name, Criticality criticality) {
  const DasId id = static_cast<DasId>(dases_.size());
  dases_.push_back(DasInfo{id, std::move(name), criticality, {}});
  return id;
}

VnetId System::add_vnet(std::string name, std::uint16_t msgs_per_round_per_node,
                        std::uint16_t queue_depth, vnet::VnetKind kind) {
  assert(!finalized_);
  const VnetId id = static_cast<VnetId>(plan_.vnets().size());
  plan_.add_vnet(vnet::VnetConfig{
      .id = id,
      .name = std::move(name),
      .msgs_per_round_per_node = msgs_per_round_per_node,
      .queue_depth = queue_depth,
      .kind = kind,
  });
  return id;
}

Job& System::add_job(DasId das, std::string name, ComponentId component,
                     Job::Behavior behavior, std::uint32_t period_rounds,
                     std::uint32_t phase_rounds) {
  assert(!finalized_);
  assert(component < components_.size());
  Job::Params jp;
  jp.id = static_cast<JobId>(jobs_.size());
  jp.name = std::move(name);
  jp.das = das;
  jp.criticality = dases_.at(das).criticality;
  jp.host = component;
  jp.period_rounds = period_rounds;
  jp.phase_rounds = phase_rounds;
  jobs_.push_back(std::make_unique<Job>(jp, std::move(behavior),
                                        sim_.fork_rng("job." + jp.name)));
  dases_.at(das).jobs.push_back(jp.id);
  components_.at(component)->host(*jobs_.back());
  return *jobs_.back();
}

PortId System::add_port(JobId owner, std::string name, VnetId vnet,
                        std::vector<JobId> receivers) {
  assert(!finalized_);
  const PortId id = static_cast<PortId>(plan_.ports().size());
  plan_.add_port(vnet::PortConfig{
      .id = id,
      .name = std::move(name),
      .vnet = vnet,
      .owner = owner,
      .receivers = std::move(receivers),
  });
  return id;
}

void System::finalize() {
  assert(!finalized_);
  finalized_ = true;
  for (const vnet::PortConfig& pc : plan_.ports()) {
    const ComponentId host = jobs_.at(pc.owner)->host();
    components_.at(host)->host_port(pc.id);
  }
  for (auto& c : components_) c->bind();
}

void System::start() {
  assert(finalized_ && "finalize() must run before start()");
  cluster_.start();
}

}  // namespace decos::platform
