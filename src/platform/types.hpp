// Identifiers and enums of the DECOS platform layer (Fig. 1 / Fig. 2).
#pragma once

#include <cstdint>
#include <limits>

#include "tta/types.hpp"

namespace decos::platform {

/// Component id == the TTA node id of its communication controller.
using ComponentId = tta::NodeId;

/// Distributed Application Subsystem id, dense from 0.
using DasId = std::uint16_t;

/// Job id, globally unique and dense from 0 across the whole system.
using JobId = std::uint16_t;
inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();

/// Port id, globally unique and dense from 0.
using PortId = std::uint16_t;

/// Virtual network id, dense from 0. Vnet 0 is reserved for the virtual
/// diagnostic network (Section II-D).
using VnetId = std::uint16_t;
inline constexpr VnetId kDiagnosticVnet = 0;

enum class Criticality : std::uint8_t {
  kSafetyCritical,
  kNonSafetyCritical,
};

[[nodiscard]] constexpr const char* to_string(Criticality c) {
  return c == Criticality::kSafetyCritical ? "SC" : "non-SC";
}

}  // namespace decos::platform
