// Jobs — the paper's FCR/FRU for software faults.
//
// A job is dispatched in its partition once per dispatch period (in TDMA
// rounds), reads its sensors, consumes messages delivered to it since the
// last dispatch, and emits messages on its output ports. Everything a job
// does is visible only at its ports — the Linking Interface — which is the
// observability assumption the whole diagnostic architecture rests on.
//
// Software faults are modelled at dispatch time: Heisenbugs as stochastic
// misbehaviour (skip, crash, value error), Bohrbugs as a deterministic
// trigger predicate. The fault injector owns these controls.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "platform/controlled_object.hpp"
#include "platform/transducer.hpp"
#include "platform/types.hpp"
#include "sim/function_ref.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "tta/types.hpp"
#include "vnet/message.hpp"

namespace decos::platform {

class Job;

/// Callback types of one dispatch. Non-owning views (see function_ref.hpp):
/// the referenced callables live on the dispatching component's stack for
/// the duration of the dispatch, and taking them by reference keeps the
/// per-dispatch path free of std::function heap traffic.
using SendFn =
    sim::FunctionRef<bool(PortId, double, std::uint8_t, std::uint32_t)>;
using AnomalyFn = sim::FunctionRef<void(double)>;

/// Execution context handed to the job's behaviour at each dispatch. Valid
/// only for the duration of the dispatch call (it views the job's inbox
/// and the caller's callbacks); behaviours must not retain it.
class JobContext {
 public:
  JobContext(Job& job, tta::RoundId round, sim::SimTime now,
             const std::vector<vnet::Message>& inbox, SendFn send_fn,
             AnomalyFn anomaly_fn = {})
      : job_(job), round_(round), now_(now), inbox_(inbox),
        send_fn_(send_fn), anomaly_fn_(anomaly_fn) {}

  [[nodiscard]] tta::RoundId round() const { return round_; }
  [[nodiscard]] sim::SimTime now() const { return now_; }
  [[nodiscard]] const std::vector<vnet::Message>& inbox() const { return inbox_; }

  /// Emits a message on one of the job's output ports.
  /// Returns false on queue overflow.
  bool send(PortId port, double value, std::uint8_t kind = 0,
            std::uint32_t aux = 0) {
    return send_fn_(port, value, kind, aux);
  }

  /// Model-based application assertion (Section IV-B.1): the job's own
  /// plausibility model found its transducer implausible. This is the
  /// "job internal information" that lets the diagnosis tell transducer
  /// faults from software faults — neither is distinguishable from the
  /// interface state alone.
  void report_transducer_anomaly(double magnitude) {
    if (anomaly_fn_) anomaly_fn_(magnitude);
  }

  [[nodiscard]] Job& job() { return job_; }
  [[nodiscard]] Sensor& sensor(std::size_t i);
  [[nodiscard]] Actuator& actuator(std::size_t i);

 private:
  Job& job_;
  tta::RoundId round_;
  sim::SimTime now_;
  const std::vector<vnet::Message>& inbox_;
  SendFn send_fn_;
  AnomalyFn anomaly_fn_;
};

/// Software fault controls of one job (set by the fault injector).
struct SoftwareFaultControls {
  /// Permanent crash: job stops being dispatched until update/restart.
  bool crashed = false;
  /// Heisenbug: per-dispatch probability of transiently misbehaving.
  double heisenbug_prob = 0.0;
  /// Bohrbug: deterministic trigger; when it returns true the dispatch
  /// misbehaves (same manifestations as the Heisenbug).
  std::function<bool(tta::RoundId, const std::vector<vnet::Message>&)>
      bohrbug_trigger;
  /// What a misbehaving dispatch does.
  enum class Manifestation : std::uint8_t {
    kSkipDispatch,   // no outputs this dispatch (timing/omission failure)
    kValueError,     // outputs corrupted by value_error magnitude
    kCrash,          // job crashes permanently
  } manifestation = Manifestation::kValueError;
  double value_error = 50.0;
};

class Job {
 public:
  using Behavior = std::function<void(JobContext&)>;

  struct Params {
    JobId id = 0;
    std::string name;
    DasId das = 0;
    Criticality criticality = Criticality::kNonSafetyCritical;
    ComponentId host = 0;
    /// Dispatch period in TDMA rounds (1 = every round).
    std::uint32_t period_rounds = 1;
    std::uint32_t phase_rounds = 0;
  };

  Job(Params p, Behavior behavior, sim::Rng rng);

  [[nodiscard]] JobId id() const { return p_.id; }
  [[nodiscard]] const std::string& name() const { return p_.name; }
  [[nodiscard]] DasId das() const { return p_.das; }
  [[nodiscard]] Criticality criticality() const { return p_.criticality; }
  [[nodiscard]] ComponentId host() const { return p_.host; }

  [[nodiscard]] bool scheduled_in(tta::RoundId round) const {
    return (round % p_.period_rounds) == p_.phase_rounds % p_.period_rounds;
  }

  /// Message arrival from the vnet layer (buffered until next dispatch).
  void deliver(const vnet::Message& msg) { inbox_.push_back(msg); }

  /// Runs one dispatch (called by the component when scheduled). The
  /// send_fn routes to the component's multiplexer; sends may be mutated
  /// here by active software faults before they reach the port. The
  /// callbacks are borrowed for the duration of the call only.
  void dispatch(tta::RoundId round, sim::SimTime now, SendFn send_fn,
                AnomalyFn anomaly_fn = {});

  /// Software update / restart: clears the crashed flag (the maintenance
  /// action for an identified software fault).
  void software_update() { sw_faults_.crashed = false; }

  Sensor& add_sensor(Sensor::Params sp);
  [[nodiscard]] std::size_t sensor_count() const { return sensors_.size(); }
  [[nodiscard]] Sensor& sensor(std::size_t i) { return *sensors_.at(i); }

  /// Attaches an actuator driving `plant` (exclusive access per the DECOS
  /// model; the plant itself is owned by the scenario's physical world).
  Actuator& add_actuator(Actuator::Params ap, ControlledObject& plant);
  [[nodiscard]] std::size_t actuator_count() const { return actuators_.size(); }
  [[nodiscard]] Actuator& actuator(std::size_t i) { return *actuators_.at(i); }

  SoftwareFaultControls& sw_faults() { return sw_faults_; }
  [[nodiscard]] const SoftwareFaultControls& sw_faults() const {
    return sw_faults_;
  }

  [[nodiscard]] std::uint64_t dispatches() const { return dispatches_; }

 private:
  Params p_;
  Behavior behavior_;
  sim::Rng rng_;
  SoftwareFaultControls sw_faults_{};
  std::vector<std::unique_ptr<Sensor>> sensors_;
  std::vector<std::unique_ptr<Actuator>> actuators_;
  std::vector<vnet::Message> inbox_;
  std::uint64_t dispatches_ = 0;
};

}  // namespace decos::platform
