#include "platform/transducer.hpp"

#include <cmath>

namespace decos::platform {

const char* to_string(SensorFaultMode m) {
  switch (m) {
    case SensorFaultMode::kHealthy: return "healthy";
    case SensorFaultMode::kStuck: return "stuck";
    case SensorFaultMode::kOffset: return "offset";
    case SensorFaultMode::kDrift: return "drift";
    case SensorFaultMode::kNoisy: return "noisy";
  }
  return "?";
}

Sensor::Sensor(Params p, sim::Rng rng) : p_(std::move(p)), rng_(rng) {
  if (!p_.signal) p_.signal = constant_signal(0.0);
}

double Sensor::truth(sim::SimTime now) const { return p_.signal(now); }

double Sensor::read(sim::SimTime now) {
  const double base = truth(now);
  switch (mode_) {
    case SensorFaultMode::kHealthy: {
      const double v = base + rng_.normal(0.0, p_.noise_stddev);
      last_healthy_ = v;
      return v;
    }
    case SensorFaultMode::kStuck:
      return last_healthy_;
    case SensorFaultMode::kOffset:
      return base + p_.offset_bias + rng_.normal(0.0, p_.noise_stddev);
    case SensorFaultMode::kDrift: {
      const double hrs = (now - fault_since_).hours();
      return base + p_.drift_rate_per_hour * hrs +
             rng_.normal(0.0, p_.noise_stddev);
    }
    case SensorFaultMode::kNoisy:
      return base + rng_.normal(0.0, p_.noisy_stddev);
  }
  return base;
}

void Sensor::set_fault(SensorFaultMode mode, sim::SimTime since) {
  mode_ = mode;
  fault_since_ = since;
}

std::function<double(sim::SimTime)> constant_signal(double v) {
  return [v](sim::SimTime) { return v; };
}

std::function<double(sim::SimTime)> sine_signal(double amplitude,
                                                double period_sec, double mean) {
  return [=](sim::SimTime t) {
    return mean + amplitude * std::sin(2.0 * 3.14159265358979 * t.sec() / period_sec);
  };
}

}  // namespace decos::platform
