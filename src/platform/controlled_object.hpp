// The controlled object and the actuator side of the transducer story.
//
// Sensors alone only cover half of the paper's job-inherent transducer
// class: an actuator fault is invisible at the actuator itself and
// manifests only through the *physics* — the controlled object stops
// following its commands, and some sensor (possibly owned by a different
// job) reports the deviation. The ControlledObject is a first-order lag
// plant advanced lazily on the simulation clock; the Actuator applies its
// fault transform to every command before it reaches the plant.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace decos::platform {

/// First-order plant: dx/dt = (u - x) / tau (+ process noise).
class ControlledObject {
 public:
  struct Params {
    std::string name = "plant";
    double time_constant_sec = 0.5;
    double initial = 0.0;
    double noise_stddev = 0.0;  // per advance step
  };

  ControlledObject(Params p, sim::Rng rng)
      : p_(p), rng_(rng), state_(p.initial) {}

  /// Sets the held input (actuator output) effective from `now`.
  void set_input(double u, sim::SimTime now) {
    advance(now);
    input_ = u;
  }

  /// Current plant state at `now`.
  [[nodiscard]] double state(sim::SimTime now) {
    advance(now);
    return state_;
  }

  [[nodiscard]] const std::string& name() const { return p_.name; }

 private:
  void advance(sim::SimTime now) {
    if (now <= last_) return;
    const double dt = (now - last_).sec();
    last_ = now;
    const double alpha = 1.0 - std::exp(-dt / p_.time_constant_sec);
    state_ += (input_ - state_) * alpha;
    if (p_.noise_stddev > 0.0) state_ += rng_.normal(0.0, p_.noise_stddev);
  }

  Params p_;
  sim::Rng rng_;
  double state_;
  double input_ = 0.0;
  sim::SimTime last_{};
};

enum class ActuatorFaultMode : std::uint8_t {
  kHealthy,
  kStuck,   // output frozen at the last healthy command
  kOffset,  // constant bias added to every command
  kDead,    // output drops to zero regardless of command
};

[[nodiscard]] constexpr const char* to_string(ActuatorFaultMode m) {
  switch (m) {
    case ActuatorFaultMode::kHealthy: return "healthy";
    case ActuatorFaultMode::kStuck: return "stuck";
    case ActuatorFaultMode::kOffset: return "offset";
    case ActuatorFaultMode::kDead: return "dead";
  }
  return "?";
}

class Actuator {
 public:
  struct Params {
    std::string name = "actuator";
    double offset_bias = 5.0;
  };

  Actuator(Params p, ControlledObject& plant) : p_(p), plant_(plant) {}

  /// Drives the plant with `u`, subject to the active fault mode.
  void command(double u, sim::SimTime now) {
    switch (mode_) {
      case ActuatorFaultMode::kHealthy:
        last_healthy_ = u;
        plant_.set_input(u, now);
        break;
      case ActuatorFaultMode::kStuck:
        plant_.set_input(last_healthy_, now);
        break;
      case ActuatorFaultMode::kOffset:
        plant_.set_input(u + p_.offset_bias, now);
        break;
      case ActuatorFaultMode::kDead:
        plant_.set_input(0.0, now);
        break;
    }
  }

  void set_fault(ActuatorFaultMode mode) { mode_ = mode; }
  [[nodiscard]] ActuatorFaultMode fault() const { return mode_; }
  [[nodiscard]] const std::string& name() const { return p_.name; }
  [[nodiscard]] ControlledObject& plant() { return plant_; }

 private:
  Params p_;
  ControlledObject& plant_;
  ActuatorFaultMode mode_ = ActuatorFaultMode::kHealthy;
  double last_healthy_ = 0.0;
};

}  // namespace decos::platform
