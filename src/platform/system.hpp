// System facade: builds a complete integrated DECOS system — TTA cluster,
// components, DASs, jobs, ports and virtual networks — from declarative
// calls, then wires and starts everything. Scenario code (tests, benches,
// examples) should not assemble the layers by hand.
//
// The virtual diagnostic network (vnet 0) is created automatically, as the
// paper reserves a dedicated encapsulated overlay for the dissemination of
// diagnostic messages (Section II-D).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "platform/component.hpp"
#include "platform/job.hpp"
#include "platform/types.hpp"
#include "sim/simulator.hpp"
#include "tta/cluster.hpp"
#include "vnet/network_plan.hpp"

namespace decos::platform {

struct DasInfo {
  DasId id = 0;
  std::string name;
  Criticality criticality = Criticality::kNonSafetyCritical;
  std::vector<JobId> jobs;
};

class System {
 public:
  struct Params {
    tta::Cluster::Params cluster{};
    /// Budget of the auto-created diagnostic vnet.
    std::uint16_t diag_msgs_per_round = 16;
    std::uint16_t diag_queue_depth = 64;
  };

  System(sim::Simulator& sim, Params params);

  // --- construction (call before finalize) -------------------------------
  DasId add_das(std::string name, Criticality criticality);

  VnetId add_vnet(std::string name, std::uint16_t msgs_per_round_per_node,
                  std::uint16_t queue_depth,
                  vnet::VnetKind kind = vnet::VnetKind::kEventTriggered);

  /// Creates a job hosted on `component`, member of `das`, dispatching
  /// every `period_rounds`.
  Job& add_job(DasId das, std::string name, ComponentId component,
               Job::Behavior behavior, std::uint32_t period_rounds = 1,
               std::uint32_t phase_rounds = 0);

  /// Creates an output port owned by `job` on `vnet`, multicast to
  /// `receivers`.
  PortId add_port(JobId owner, std::string name, VnetId vnet,
                  std::vector<JobId> receivers);

  /// Wires ports onto components and installs node callbacks.
  void finalize();

  /// Starts the cluster schedule. Requires finalize().
  void start();

  // --- access -------------------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] tta::Cluster& cluster() { return cluster_; }
  [[nodiscard]] Component& component(ComponentId id) { return *components_.at(id); }
  [[nodiscard]] std::uint32_t component_count() const {
    return static_cast<std::uint32_t>(components_.size());
  }
  [[nodiscard]] Job& job(JobId id) { return *jobs_.at(id); }
  [[nodiscard]] const Job& job(JobId id) const { return *jobs_.at(id); }
  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  [[nodiscard]] const DasInfo& das(DasId id) const { return dases_.at(id); }
  [[nodiscard]] const std::vector<DasInfo>& dases() const { return dases_; }
  [[nodiscard]] vnet::NetworkPlan& plan() { return plan_; }
  [[nodiscard]] const vnet::NetworkPlan& plan() const { return plan_; }

 private:
  sim::Simulator& sim_;
  tta::Cluster cluster_;
  vnet::NetworkPlan plan_;
  std::vector<std::unique_ptr<Component>> components_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<DasInfo> dases_;
  bool finalized_ = false;
};

}  // namespace decos::platform
