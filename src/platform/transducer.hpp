// Sensors and actuators (transducers) — the linkage between the computer
// system and the controlled object. In the DECOS model each job has
// exclusive access to its transducers, so a transducer fault manifests as
// unspecified behaviour of exactly one job (a *job inherent* fault that is
// indistinguishable from a software fault at the interface, Section III-D).
//
// The sensor produces a reading of a synthetic physical signal; its fault
// mode distorts the reading the way real failure mechanisms do: stuck-at
// (frozen), offset (calibration loss), drift (wearout — the paper's
// "increasing deviation ... at the verge of becoming incorrect", Fig. 8),
// or noise (intermittent contact).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace decos::platform {

enum class SensorFaultMode : std::uint8_t {
  kHealthy,
  kStuck,    // output frozen at the last healthy reading
  kOffset,   // constant bias added
  kDrift,    // bias grows linearly with time (wearout signature)
  kNoisy,    // heavy gaussian noise added
};

[[nodiscard]] const char* to_string(SensorFaultMode m);

class Sensor {
 public:
  struct Params {
    std::string name = "sensor";
    /// Ground-truth signal as a function of time.
    std::function<double(sim::SimTime)> signal;
    /// Healthy measurement noise (stddev).
    double noise_stddev = 0.01;
    double offset_bias = 5.0;              // bias in kOffset mode
    double drift_rate_per_hour = 1.0;      // bias growth in kDrift mode
    double noisy_stddev = 3.0;             // stddev in kNoisy mode
  };

  Sensor(Params p, sim::Rng rng);

  /// One reading at instant `now`.
  [[nodiscard]] double read(sim::SimTime now);

  /// Ground truth (for oracles/tests only — no job may call this).
  [[nodiscard]] double truth(sim::SimTime now) const;

  void set_fault(SensorFaultMode mode, sim::SimTime since);
  [[nodiscard]] SensorFaultMode fault() const { return mode_; }
  [[nodiscard]] const std::string& name() const { return p_.name; }

 private:
  Params p_;
  sim::Rng rng_;
  SensorFaultMode mode_ = SensorFaultMode::kHealthy;
  sim::SimTime fault_since_{};
  double last_healthy_ = 0.0;
};

/// Standard test signals.
[[nodiscard]] std::function<double(sim::SimTime)> constant_signal(double v);
[[nodiscard]] std::function<double(sim::SimTime)> sine_signal(double amplitude,
                                                              double period_sec,
                                                              double mean = 0.0);

}  // namespace decos::platform
