#include "platform/component.hpp"

#include <cassert>

namespace decos::platform {

Component::Component(sim::Simulator& sim, tta::TtaNode& node,
                     const vnet::NetworkPlan& plan)
    : sim_(sim), node_(node), plan_(plan), mux_(plan, node.node_id()) {
  mux_.bind_metrics(sim_.metrics());
}

void Component::host(Job& job) {
  assert(job.host() == id() && "job host mismatch");
  jobs_.emplace(job.id(), &job);
}

void Component::host_port(PortId port) { mux_.host_port(port); }

void Component::bind() {
  local_receivers_.assign(plan_.ports().size(), {});
  for (const vnet::PortConfig& pc : plan_.ports()) {
    for (JobId receiver : pc.receivers) {
      auto it = jobs_.find(receiver);
      if (it != jobs_.end()) local_receivers_[pc.id].push_back(it->second);
    }
  }
  node_.payload_provider = [this](tta::RoundId round,
                                  std::vector<std::uint8_t>& out) {
    build_payload(round, out);
  };
  node_.delivery_handler = [this](tta::NodeId, const std::vector<std::uint8_t>& payload,
                                  tta::RoundId) {
    mux_.unpack_arrival(payload, arrival_scratch_);
    for (const vnet::Message& m : arrival_scratch_) {
      route_local(m);
    }
  };
}

void Component::build_payload(tta::RoundId round,
                              std::vector<std::uint8_t>& out) {
  // Application layer first: dispatch partitions scheduled this round.
  const sim::SimTime now = sim_.now();
  for (auto& [jid, job] : jobs_) {
    if (!job->scheduled_in(round)) continue;
    job->dispatch(
        round, now,
        [this, round](PortId port, double value, std::uint8_t kind,
                      std::uint32_t aux) {
          vnet::Message msg;
          msg.port = port;
          msg.value = value;
          msg.kind = kind;
          msg.aux = aux;
          return mux_.send(msg, round);
        },
        [this, round, jid = jid](double magnitude) {
          if (on_transducer_anomaly) {
            on_transducer_anomaly(jid, magnitude, round);
          }
        });
  }

  // Then the encapsulation service: drain under the vnet budgets.
  mux_.drain_messages(round, drain_scratch_);
  for (const vnet::Message& m : drain_scratch_) {
    if (on_message_sent) on_message_sent(m, round);
    route_local(m);  // loopback for co-hosted subscribers (no self-reception)
  }
  vnet::pack_into(drain_scratch_, round, out);
}

void Component::route_local(const vnet::Message& msg) {
  if (msg.port >= local_receivers_.size()) return;
  if (delivery_mutator) {
    vnet::Message stored = msg;  // the record as this component holds it
    delivery_mutator(stored);
    for (Job* receiver : local_receivers_[msg.port]) {
      if (delivery_filter && !delivery_filter(stored, receiver->id())) continue;
      receiver->deliver(stored);
    }
    return;
  }
  for (Job* receiver : local_receivers_[msg.port]) {
    if (delivery_filter && !delivery_filter(msg, receiver->id())) continue;
    receiver->deliver(msg);
  }
}

}  // namespace decos::platform
