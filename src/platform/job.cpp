#include "platform/job.hpp"

#include <utility>

namespace decos::platform {

Sensor& JobContext::sensor(std::size_t i) { return job_.sensor(i); }

Actuator& JobContext::actuator(std::size_t i) { return job_.actuator(i); }

Job::Job(Params p, Behavior behavior, sim::Rng rng)
    : p_(std::move(p)), behavior_(std::move(behavior)), rng_(rng) {}

Sensor& Job::add_sensor(Sensor::Params sp) {
  sensors_.push_back(std::make_unique<Sensor>(
      std::move(sp), rng_.fork("sensor." + std::to_string(sensors_.size()))));
  return *sensors_.back();
}

Actuator& Job::add_actuator(Actuator::Params ap, ControlledObject& plant) {
  actuators_.push_back(std::make_unique<Actuator>(std::move(ap), plant));
  return *actuators_.back();
}

void Job::dispatch(tta::RoundId round, sim::SimTime now, SendFn send_fn,
                   AnomalyFn anomaly_fn) {
  if (sw_faults_.crashed) {
    inbox_.clear();
    return;
  }

  // Decide whether this dispatch misbehaves (Heisenbug stochastically,
  // Bohrbug deterministically on its trigger condition).
  bool misbehave = false;
  if (sw_faults_.heisenbug_prob > 0.0 && rng_.bernoulli(sw_faults_.heisenbug_prob)) {
    misbehave = true;
  }
  if (sw_faults_.bohrbug_trigger && sw_faults_.bohrbug_trigger(round, inbox_)) {
    misbehave = true;
  }

  using M = SoftwareFaultControls::Manifestation;
  if (misbehave && sw_faults_.manifestation == M::kCrash) {
    sw_faults_.crashed = true;
    inbox_.clear();
    return;
  }
  if (misbehave && sw_faults_.manifestation == M::kSkipDispatch) {
    inbox_.clear();
    return;
  }

  const bool corrupt_values =
      misbehave && sw_faults_.manifestation == M::kValueError;

  auto wrapped_send = [&](PortId port, double value, std::uint8_t kind,
                          std::uint32_t aux) {
    if (corrupt_values) value += sw_faults_.value_error;
    return send_fn(port, value, kind, aux);
  };

  // The context views the inbox in place; nothing delivers to this job
  // while its own dispatch runs (arrivals are routed after all dispatches
  // of the round), so clearing afterwards — keeping the capacity — is
  // safe and makes the steady-state dispatch allocation-free.
  JobContext ctx(*this, round, now, inbox_, wrapped_send, anomaly_fn);
  ++dispatches_;
  if (behavior_) behavior_(ctx);
  inbox_.clear();
}

}  // namespace decos::platform
