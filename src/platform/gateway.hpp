// Hidden gateways (Fig. 1): interconnect two DASs "to improve quality of
// service and eliminate resource duplication". A gateway is an ordinary
// job subscribed to ports of one virtual network that republishes selected
// messages on its own port of another virtual network — hidden because
// neither DAS's jobs can tell a gatewayed message from a native one.
#pragma once

#include <functional>
#include <memory>

#include "platform/job.hpp"

namespace decos::platform {

struct GatewayOptions {
  /// Optional value transformation (unit conversion, rescaling).
  std::function<double(double)> transform;
  /// Forward only messages whose kind matches (255 = all).
  std::uint8_t kind_filter = 255;
  /// Downsampling: forward every Nth message (1 = all).
  std::uint32_t decimation = 1;
};

/// Builds the gateway behaviour: every dispatch, the inbox (messages from
/// the source vnet's ports this job subscribes to) is filtered,
/// transformed and republished on `out_port`. The PortId is captured
/// through a shared slot because ports are created after jobs.
[[nodiscard]] inline Job::Behavior make_gateway(
    std::shared_ptr<PortId> out_port, GatewayOptions opts = {}) {
  auto counter = std::make_shared<std::uint32_t>(0);
  return [out_port, opts = std::move(opts), counter](JobContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      if (opts.kind_filter != 255 && m.kind != opts.kind_filter) continue;
      if (opts.decimation > 1 && (++*counter % opts.decimation) != 0) continue;
      const double v = opts.transform ? opts.transform(m.value) : m.value;
      ctx.send(*out_port, v, m.kind);
    }
  };
}

}  // namespace decos::platform
