// The "20-80 rule" of software faults (Section IV-B.1, citing Fenton &
// Ohlsson): a small minority of software modules causes the majority of
// operational failures. ParetoAllocator distributes a total fault budget
// over N modules so that the top `head_fraction` of modules receives
// `head_mass` of the faults, following a truncated power law.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/rng.hpp"

namespace decos::reliability {

class ParetoAllocator {
 public:
  struct Params {
    double head_fraction = 0.20;  // top 20% of modules ...
    double head_mass = 0.80;      // ... carry 80% of the fault mass
  };

  ParetoAllocator() : ParetoAllocator(Params{}) {}
  explicit ParetoAllocator(Params p) : p_(p) {}

  /// Returns per-module fault weights (summing to 1) for `n` modules,
  /// sorted descending. Uses a Zipf-like law with the exponent solved so
  /// the head/mass constraint holds.
  [[nodiscard]] std::vector<double> weights(std::size_t n) const;

  /// Distributes `total_faults` faults over `n` modules by sampling the
  /// weight distribution; returns per-module counts (index = module).
  [[nodiscard]] std::vector<std::size_t> allocate(std::size_t n,
                                                  std::size_t total_faults,
                                                  sim::Rng& rng) const;

  /// Fraction of mass carried by the top `fraction` of entries of `w`
  /// (assumed sorted descending); used by tests and bench E8 to verify the
  /// realised distribution.
  [[nodiscard]] static double head_share(const std::vector<double>& w,
                                         double fraction);

  [[nodiscard]] const Params& params() const { return p_; }

 private:
  [[nodiscard]] double solve_exponent(std::size_t n) const;

  Params p_;
};

}  // namespace decos::reliability
