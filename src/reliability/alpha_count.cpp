#include "reliability/alpha_count.hpp"

#include <cassert>

namespace decos::reliability {

void WindowCount::observe(bool failed) {
  assert(window_ <= 512);
  const std::uint32_t pos = static_cast<std::uint32_t>(round_ % window_);
  const std::uint32_t word = pos / 64, bit = pos % 64;
  const std::uint64_t mask = std::uint64_t{1} << bit;

  // Evict the observation that falls out of the window.
  if (round_ >= window_ && (recent_bits_[word] & mask) != 0) {
    --recent_count_;
  }
  if (failed) {
    recent_bits_[word] |= mask;
    ++recent_count_;
  } else {
    recent_bits_[word] &= ~mask;
  }
  ++round_;
  if (recent_count_ >= k_) flagged_ = true;
}

}  // namespace decos::reliability
