// Hazard-rate models: exponential, Weibull, and the composite bathtub curve
// of Fig. 7 (infant mortality + useful life + wearout).
//
// A HazardModel answers h(t) — the instantaneous failure rate at device age
// t — and can sample a time-to-failure given an Rng. Fault sources use the
// sampled TTF to schedule activations; bench E1 integrates h(t) over a
// population to regenerate the bathtub curve.
#pragma once

#include <memory>

#include "reliability/fit.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace decos::reliability {

class HazardModel {
 public:
  virtual ~HazardModel() = default;

  /// Instantaneous hazard rate at age `t`, in failures per hour.
  [[nodiscard]] virtual double hazard_per_hour(sim::Duration age) const = 0;

  /// Samples a time-to-failure for a device of age `age` (memory of the
  /// model's shape is preserved — i.e. conditional on survival to `age`).
  [[nodiscard]] virtual sim::Duration sample_ttf(sim::Rng& rng,
                                                 sim::Duration age) const = 0;
};

/// Constant-rate (exponential) model — the useful-life floor of the bathtub.
class ExponentialHazard final : public HazardModel {
 public:
  explicit ExponentialHazard(FitRate rate) : rate_(rate) {}

  [[nodiscard]] double hazard_per_hour(sim::Duration) const override {
    return rate_.per_hour();
  }
  [[nodiscard]] sim::Duration sample_ttf(sim::Rng& rng,
                                         sim::Duration) const override;

  [[nodiscard]] FitRate rate() const { return rate_; }

 private:
  FitRate rate_;
};

/// Weibull model. shape < 1 gives decreasing hazard (infant mortality),
/// shape > 1 increasing hazard (wearout). `scale` is the characteristic
/// life in hours.
class WeibullHazard final : public HazardModel {
 public:
  WeibullHazard(double shape, double scale_hours);

  [[nodiscard]] double hazard_per_hour(sim::Duration age) const override;
  [[nodiscard]] sim::Duration sample_ttf(sim::Rng& rng,
                                         sim::Duration age) const override;

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale_hours() const { return scale_hours_; }

 private:
  double shape_;
  double scale_hours_;
};

/// The Fig. 7 bathtub: superposition of an infant-mortality Weibull
/// (shape < 1), a constant useful-life rate, and a wearout Weibull
/// (shape > 1). Hazards add; TTF is sampled by competing risks (minimum of
/// the three arms' samples).
class BathtubHazard final : public HazardModel {
 public:
  struct Params {
    double infant_shape = 0.5;
    double infant_scale_hours = 2'000.0;   // decays over the first weeks
    /// Fraction of the population subject to infant mortality at all
    /// (the paper notes infant faults affect only a subpopulation).
    double infant_population_fraction = 0.02;
    FitRate useful_life_rate{FitRate{5.7}};  // ~50 / 1e6 units / year
    double wearout_shape = 4.0;
    double wearout_scale_hours = 120'000.0;  // ~13.7 years characteristic life
  };

  explicit BathtubHazard(Params p) : p_(p) {}

  /// Population-average hazard (infant arm weighted by its fraction).
  [[nodiscard]] double hazard_per_hour(sim::Duration age) const override;

  /// Samples TTF for one device; whether the device belongs to the infant
  /// subpopulation is itself drawn from `rng`.
  [[nodiscard]] sim::Duration sample_ttf(sim::Rng& rng,
                                         sim::Duration age) const override;

  [[nodiscard]] const Params& params() const { return p_; }

 private:
  Params p_;
};

/// Convenience: the paper's default bathtub parameterisation (useful-life
/// floor calibrated to 50 failures per million ECUs per year).
[[nodiscard]] BathtubHazard::Params default_ecu_bathtub();

}  // namespace decos::reliability
