#include "reliability/pareto.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace decos::reliability {
namespace {

// Head share of a Zipf law with exponent s over n items.
double zipf_head_share(double s, std::size_t n, double fraction) {
  const std::size_t head = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(n))));
  double head_sum = 0.0, total = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const double w = std::pow(static_cast<double>(i), -s);
    total += w;
    if (i <= head) head_sum += w;
  }
  return head_sum / total;
}

}  // namespace

double ParetoAllocator::solve_exponent(std::size_t n) const {
  // Bisection on s in [0, 6]: head share grows monotonically with s.
  double lo = 0.0, hi = 6.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (zipf_head_share(mid, n, p_.head_fraction) < p_.head_mass) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<double> ParetoAllocator::weights(std::size_t n) const {
  assert(n > 0);
  const double s = solve_exponent(n);
  std::vector<double> w(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -s);
    total += w[i];
  }
  for (auto& v : w) v /= total;
  return w;
}

std::vector<std::size_t> ParetoAllocator::allocate(std::size_t n,
                                                   std::size_t total_faults,
                                                   sim::Rng& rng) const {
  if (n == 0) return {};
  const auto w = weights(n);
  std::vector<double> cdf(n);
  std::partial_sum(w.begin(), w.end(), cdf.begin());
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t f = 0; f < total_faults; ++f) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto idx = static_cast<std::size_t>(it - cdf.begin());
    ++counts[std::min(idx, n - 1)];
  }
  return counts;
}

double ParetoAllocator::head_share(const std::vector<double>& w, double fraction) {
  if (w.empty()) return 0.0;
  const std::size_t head = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(w.size()))));
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  const double head_sum = std::accumulate(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(head), 0.0);
  return total > 0.0 ? head_sum / total : 0.0;
}

}  // namespace decos::reliability
