// The alpha-count mechanism of Bondavalli et al. (FTCS'97), referenced by
// the paper (Section V-C) as the technique for discriminating transient
// from permanent/intermittent faults.
//
// Each judged entity keeps a score alpha. On every judgement round the
// score decays multiplicatively; on an observed failure it is incremented.
// Rare, uncorrelated transients keep alpha low; internal faults, which fire
// at a higher rate and at the same location, push alpha over the threshold.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace decos::reliability {

class AlphaCount {
 public:
  struct Params {
    double increment = 1.0;   // added per observed failure
    double decay = 0.995;     // multiplicative decay per judgement round
    double threshold = 3.0;   // alpha >= threshold => flagged
  };

  AlphaCount() : AlphaCount(Params{}) {}
  explicit AlphaCount(Params p) : p_(p) {}

  /// One judgement round: decay, then add increment if a failure was seen.
  void observe(bool failed) {
    alpha_ *= p_.decay;
    if (failed) {
      alpha_ += p_.increment;
      ++failures_;
    }
    ++rounds_;
  }

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] bool flagged() const { return alpha_ >= p_.threshold; }
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] const Params& params() const { return p_; }

  void reset() {
    alpha_ = 0.0;
    rounds_ = 0;
    failures_ = 0;
  }

 private:
  Params p_;
  double alpha_ = 0.0;
  std::uint64_t rounds_ = 0;
  std::uint64_t failures_ = 0;
};

/// Naive baseline for the E7 ablation: flags when K failures fall within a
/// sliding window of N rounds, with no decay memory in between.
class WindowCount {
 public:
  WindowCount(std::uint32_t window_rounds, std::uint32_t k_threshold)
      : window_(window_rounds), k_(k_threshold) {}

  void observe(bool failed);
  [[nodiscard]] bool flagged() const { return flagged_; }

 private:
  std::uint32_t window_;
  std::uint32_t k_;
  std::uint64_t round_ = 0;
  // Ring of the last `window_` observations, stored compactly.
  std::uint64_t recent_bits_[8] = {};  // supports window <= 512
  std::uint32_t recent_count_ = 0;
  bool flagged_ = false;
};

}  // namespace decos::reliability
