#include "reliability/hazard.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace decos::reliability {
namespace {

constexpr double kNsPerHour = 3.6e12;

sim::Duration hours_to_duration(double h) {
  // Clamp to the representable range; "never fails" maps to a far future.
  const double ns = h * kNsPerHour;
  if (ns >= 9.0e18) return sim::Duration{std::int64_t{9'000'000'000'000'000'000}};
  return sim::Duration{static_cast<std::int64_t>(ns)};
}

}  // namespace

sim::Duration ExponentialHazard::sample_ttf(sim::Rng& rng, sim::Duration) const {
  // Memoryless: age is irrelevant.
  const double hrs = rng.exponential(rate_.per_hour());
  return hours_to_duration(hrs);
}

WeibullHazard::WeibullHazard(double shape, double scale_hours)
    : shape_(shape), scale_hours_(scale_hours) {
  assert(shape > 0.0 && scale_hours > 0.0);
}

double WeibullHazard::hazard_per_hour(sim::Duration age) const {
  const double t = std::max(age.hours(), 1e-9);
  return (shape_ / scale_hours_) * std::pow(t / scale_hours_, shape_ - 1.0);
}

sim::Duration WeibullHazard::sample_ttf(sim::Rng& rng, sim::Duration age) const {
  // Conditional sampling: given survival to age a, the remaining life
  // T - a satisfies  T = scale * ((a/scale)^k - ln U)^(1/k).
  const double a = age.hours() / scale_hours_;
  const double base = std::pow(a, shape_) - std::log1p(-rng.uniform());
  const double t_hours = scale_hours_ * std::pow(base, 1.0 / shape_);
  const double remaining = std::max(t_hours - age.hours(), 0.0);
  return hours_to_duration(remaining);
}

double BathtubHazard::hazard_per_hour(sim::Duration age) const {
  const WeibullHazard infant(p_.infant_shape, p_.infant_scale_hours);
  const WeibullHazard wearout(p_.wearout_shape, p_.wearout_scale_hours);
  return p_.infant_population_fraction * infant.hazard_per_hour(age) +
         p_.useful_life_rate.per_hour() + wearout.hazard_per_hour(age);
}

sim::Duration BathtubHazard::sample_ttf(sim::Rng& rng, sim::Duration age) const {
  const WeibullHazard wearout(p_.wearout_shape, p_.wearout_scale_hours);
  const ExponentialHazard useful(p_.useful_life_rate);

  sim::Duration ttf = std::min(useful.sample_ttf(rng, age),
                               wearout.sample_ttf(rng, age));
  // Membership in the infant subpopulation is decided per call; callers
  // sampling one device should call once and cache.
  if (rng.bernoulli(p_.infant_population_fraction)) {
    const WeibullHazard infant(p_.infant_shape, p_.infant_scale_hours);
    ttf = std::min(ttf, infant.sample_ttf(rng, age));
  }
  return ttf;
}

BathtubHazard::Params default_ecu_bathtub() {
  BathtubHazard::Params p;
  // 50 failures / 1e6 units / year = 50 / (1e6 * 8760 h) = 5.7e-9 per hour
  // = 5.7 FIT.
  p.useful_life_rate = FitRate{
      paper::kUsefulLifeFailuresPerMillionPerYear / (1e6 * 8760.0) * 1e9};
  return p;
}

}  // namespace decos::reliability
