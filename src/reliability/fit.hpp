// FIT-rate arithmetic.
//
// The paper states its fault-hypothesis rates in FIT (failures per 10^9
// device-hours): ~100 FIT permanent, ~100 000 FIT transient. These helpers
// keep the unit conversions in one place and strongly typed.
#pragma once

#include <cmath>

#include "sim/time.hpp"

namespace decos::reliability {

/// Failure rate expressed in FIT = failures / 10^9 hours.
class FitRate {
 public:
  constexpr FitRate() = default;
  constexpr explicit FitRate(double fit) : fit_(fit) {}

  [[nodiscard]] constexpr double fit() const { return fit_; }

  /// Failures per hour.
  [[nodiscard]] constexpr double per_hour() const { return fit_ * 1e-9; }

  /// Failures per simulated nanosecond (the kernel's unit).
  [[nodiscard]] constexpr double per_ns() const {
    return per_hour() / 3.6e12;
  }

  /// Mean time to failure in hours. Returned as a double because low FIT
  /// rates (100 FIT ~ 1141 years) exceed the +-292-year range of the
  /// nanosecond Duration type.
  [[nodiscard]] constexpr double mttf_hours() const { return 1.0 / per_hour(); }

  /// Probability of at least one failure within `d` under an exponential
  /// (constant-rate) model.
  [[nodiscard]] double failure_probability(sim::Duration d) const {
    return 1.0 - std::exp(-per_ns() * static_cast<double>(d.ns()));
  }

  constexpr FitRate operator+(FitRate o) const { return FitRate{fit_ + o.fit_}; }
  constexpr FitRate operator*(double k) const { return FitRate{fit_ * k}; }
  constexpr auto operator<=>(const FitRate&) const = default;

 private:
  double fit_ = 0.0;
};

/// Paper fault-hypothesis constants (Section III-E).
namespace paper {
/// Permanent hardware failure rate of a component FRU: ~100 FIT (~1000 yr).
inline constexpr FitRate kPermanentHardware{100.0};
/// Transient hardware failure rate of a component FRU: ~100 000 FIT (~1 yr).
inline constexpr FitRate kTransientHardware{100'000.0};
/// Duration of a transient hardware failure: tens of milliseconds (<50 ms).
inline constexpr sim::Duration kTransientOutageMax = sim::milliseconds(50);
/// Duration of a correlated EMI burst (ISO 7637): ~10 ms.
inline constexpr sim::Duration kEmiBurstDuration = sim::milliseconds(10);
/// OBD recording threshold for transient failures: 500 ms.
inline constexpr sim::Duration kObdRecordThreshold = sim::milliseconds(500);
/// Useful-life ECU field failure frequency: 50 per 1M ECUs per year.
inline constexpr double kUsefulLifeFailuresPerMillionPerYear = 50.0;
/// Average cost of a single LRU removal (USD), avionics (Section I).
inline constexpr double kCostPerLruRemoval = 800.0;
}  // namespace paper

}  // namespace decos::reliability
