#include "exec/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace decos::exec {

unsigned default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? default_jobs() : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace decos::exec
