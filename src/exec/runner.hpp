// Deterministic parallel experiment runner.
//
// Every multi-run sweep in this repo — fault-injection campaigns, chaos
// campaigns, bench seed loops — is a list of *independent* experiments:
// each run builds its own Simulator and metrics Registry (factory),
// advances it (run) and reduces the rig to a plain value (harvest). The
// runner executes those closures on a worker pool and hands the outcomes
// back *in submission order behind a barrier*, so folding them into an
// accumulator on the calling thread replays the exact sequence of the
// historical serial loop. Output is therefore bit-identical regardless
// of the job count or how the OS schedules the workers — the property
// tests/exec_test.cpp pins down.
//
// A run that throws is captured as a per-run error and never poisons its
// siblings; the fold helper surfaces the first failure only after every
// run has finished.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace decos::exec {

/// Result slot for one run: either the harvested value or the message of
/// the exception the run threw.
template <typename Result>
struct RunOutcome {
  std::optional<Result> result;  // engaged iff the run completed
  std::string error;             // what() of the exception otherwise

  [[nodiscard]] bool ok() const { return result.has_value(); }
};

class ExperimentRunner {
 public:
  /// `jobs` worker threads; 0 means default_jobs() (hardware concurrency).
  explicit ExperimentRunner(unsigned jobs = 0)
      : jobs_(jobs == 0 ? default_jobs() : jobs) {}

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Executes every closure and returns the outcomes in submission order.
  /// With jobs() == 1 (or a single run) everything executes inline on the
  /// calling thread — exactly the historical serial path, no pool.
  template <typename Result>
  [[nodiscard]] std::vector<RunOutcome<Result>> run(
      std::vector<std::function<Result()>> runs) {
    std::vector<RunOutcome<Result>> outcomes(runs.size());
    const auto execute = [&runs, &outcomes](std::size_t i) {
      try {
        outcomes[i].result.emplace(runs[i]());
      } catch (const std::exception& e) {
        outcomes[i].error = e.what();
        if (outcomes[i].error.empty()) outcomes[i].error = "exception";
      } catch (...) {
        outcomes[i].error = "unknown exception";
      }
    };
    if (jobs_ <= 1 || runs.size() <= 1) {
      for (std::size_t i = 0; i < runs.size(); ++i) execute(i);
      return outcomes;
    }
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs_, runs.size())));
    for (std::size_t i = 0; i < runs.size(); ++i) {
      pool.submit([&execute, i] { execute(i); });
    }
    // The merge barrier: from here on only the calling thread touches the
    // outcomes, so accumulators folded from them need no locking.
    pool.wait_idle();
    return outcomes;
  }

  /// run() + ordered fold: `merge(i, result)` is invoked on the calling
  /// thread in submission order. A failed run aborts the fold with
  /// std::runtime_error — but only after all runs have finished, so one
  /// bad seed cannot tear down its siblings mid-flight.
  template <typename Result, typename Merge>
  void run_and_merge(std::vector<std::function<Result()>> runs,
                     Merge&& merge) {
    auto outcomes = run<Result>(std::move(runs));
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (!outcomes[i].ok()) {
        throw std::runtime_error("experiment run " + std::to_string(i) +
                                 " failed: " + outcomes[i].error);
      }
      merge(i, *outcomes[i].result);
    }
  }

 private:
  unsigned jobs_;
};

}  // namespace decos::exec
