// Deterministic parallel experiment runner.
//
// Every multi-run sweep in this repo — fault-injection campaigns, chaos
// campaigns, bench seed loops — is a list of *independent* experiments:
// each run builds its own Simulator and metrics Registry (factory),
// advances it (run) and reduces the rig to a plain value (harvest). The
// runner executes those closures on a worker pool and hands the outcomes
// back *in submission order behind a barrier*, so folding them into an
// accumulator on the calling thread replays the exact sequence of the
// historical serial loop. Output is therefore bit-identical regardless
// of the job count or how the OS schedules the workers — the property
// tests/exec_test.cpp pins down.
//
// A run that throws is captured as a per-run error and never poisons its
// siblings; the fold helper surfaces the first failure only after every
// run has finished.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace decos::exec {

/// Result slot for one run: either the harvested value or the message of
/// the exception the run threw.
template <typename Result>
struct RunOutcome {
  std::optional<Result> result;  // engaged iff the run completed
  std::string error;             // what() of the exception otherwise

  [[nodiscard]] bool ok() const { return result.has_value(); }
};

/// Thrown by run_and_merge when a run failed: carries the failing run's
/// submission index, its human-readable descriptor (empty when the caller
/// provided no labeller) and the original exception text as structured
/// fields, so batch drivers can report *which* experiment died without
/// parsing what().
class ExperimentError : public std::runtime_error {
 public:
  ExperimentError(std::size_t index, std::string label, std::string message)
      : std::runtime_error("experiment run " + std::to_string(index) +
                           (label.empty() ? "" : " [" + label + "]") +
                           " failed: " + message),
        index_(index),
        label_(std::move(label)),
        message_(std::move(message)) {}

  /// Submission index of the failed run.
  [[nodiscard]] std::size_t index() const { return index_; }
  /// Caller-supplied descriptor of the failed run ("" without labeller).
  [[nodiscard]] const std::string& label() const { return label_; }
  /// what() of the exception the run threw.
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  std::size_t index_;
  std::string label_;
  std::string message_;
};

class ExperimentRunner {
 public:
  /// `jobs` worker threads; 0 means default_jobs() (hardware concurrency).
  explicit ExperimentRunner(unsigned jobs = 0)
      : jobs_(jobs == 0 ? default_jobs() : jobs) {}

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Executes every closure and returns the outcomes in submission order.
  /// With jobs() == 1 (or a single run) everything executes inline on the
  /// calling thread — exactly the historical serial path, no pool.
  template <typename Result>
  [[nodiscard]] std::vector<RunOutcome<Result>> run(
      std::vector<std::function<Result()>> runs) {
    std::vector<RunOutcome<Result>> outcomes(runs.size());
    const auto execute = [&runs, &outcomes](std::size_t i) {
      try {
        outcomes[i].result.emplace(runs[i]());
      } catch (const std::exception& e) {
        outcomes[i].error = e.what();
        if (outcomes[i].error.empty()) outcomes[i].error = "exception";
      } catch (...) {
        outcomes[i].error = "unknown exception";
      }
    };
    if (jobs_ <= 1 || runs.size() <= 1) {
      for (std::size_t i = 0; i < runs.size(); ++i) execute(i);
      return outcomes;
    }
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs_, runs.size())));
    for (std::size_t i = 0; i < runs.size(); ++i) {
      pool.submit([&execute, i] { execute(i); });
    }
    // The merge barrier: from here on only the calling thread touches the
    // outcomes, so accumulators folded from them need no locking.
    pool.wait_idle();
    return outcomes;
  }

  /// run() + ordered fold: `merge(i, result)` is invoked on the calling
  /// thread in submission order. A failed run aborts the fold with
  /// ExperimentError (index + optional label + original message) — but
  /// only after all runs have finished, so one bad seed cannot tear down
  /// its siblings mid-flight. `label(i)` — when provided — names run `i`
  /// in the error (e.g. a sweep's replay token).
  template <typename Result, typename Merge>
  void run_and_merge(std::vector<std::function<Result()>> runs, Merge&& merge,
                     const std::function<std::string(std::size_t)>& label = {}) {
    auto outcomes = run<Result>(std::move(runs));
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (!outcomes[i].ok()) {
        throw ExperimentError(i, label ? label(i) : std::string(),
                              outcomes[i].error);
      }
      merge(i, *outcomes[i].result);
    }
  }

 private:
  unsigned jobs_;
};

}  // namespace decos::exec
