// Fixed-size worker pool for the experiment engine.
//
// Deliberately minimal: submit() enqueues a task, wait_idle() is the
// barrier the ExperimentRunner merges behind, shutdown() drains whatever
// is still queued and joins the workers. All synchronisation is one
// mutex + two condition variables; a finished task's writes are visible
// to whoever returns from wait_idle() (release via the mutex on task
// completion, acquire on the barrier wake-up), which is the
// happens-before edge the runner's result slots rely on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace decos::exec {

/// Worker count used when the caller passes 0: the hardware concurrency,
/// floored at 1 (std::thread::hardware_concurrency() may return 0).
[[nodiscard]] unsigned default_jobs();

class ThreadPool {
 public:
  /// Starts `threads` workers (0 => default_jobs()).
  explicit ThreadPool(unsigned threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool() { shutdown(); }

  /// Enqueues a task. Tasks must not throw — the runner wraps user code
  /// and captures exceptions before they reach the pool.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished (queue empty and no
  /// worker mid-task). The runner's merge barrier.
  void wait_idle();

  /// Finishes every already-submitted task, then joins the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  bool stop_ = false;
};

}  // namespace decos::exec
