// E21 — hierarchical diagnosis scaling (DESIGN.md §15).
//
// Three sections, all on the VCube hierarchy rig (scenario/hierarchy.hpp):
//
//  1. Scaling sweep: clusters of 8..64 components (every component hosts
//     an assessor position), application rings scaled so the largest run
//     carries 512 FRUs. Per-round routed diagnostic traffic (heartbeat +
//     symptom copies, counted at the agents' tester-routing fan-out) must
//     scale ~ N·(d+1) = N·log N — the table reports the measured ratio,
//     which stays flat when the overlay delivers its bound. A permanent
//     failure is injected into every run and the composed detection
//     latency (injection round -> first composed trust violation) is
//     reported; it stays bounded while N grows 8x.
//  2. Kill-any-assessor sweep (N=8): every overlay position is killed in
//     turn; the composed view must convict the dead host every time with
//     zero legacy failovers — the overlay self-heals by construction.
//  3. 512-FRU end-to-end: the N=64 flagship run additionally loses an
//     assessor position (host 42) mid-run next to the faulty component;
//     both must be convicted, still with zero failovers.
//
// Counts and latencies are deterministic (fixed seed, logical time), so
// the --json export is gated in CI against a checked-in baseline by
// tools/check_hierarchy.cmake (exact equality on the structural fields,
// tolerance on throughput-like ones).
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/table.hpp"
#include "fault/chaos.hpp"
#include "obs/bench_io.hpp"
#include "scenario/hierarchy.hpp"

using namespace decos;

namespace {

/// One TDMA round of an N-component cluster in simulated time.
sim::Duration round_len(const scenario::HierarchyOptions& opts) {
  return opts.slot_length * static_cast<std::int64_t>(opts.components);
}

std::string fmt(double v, const char* spec = "%.1f") {
  char buf[32];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

tta::RoundId current_round(scenario::HierarchySystem& rig) {
  return rig.system().cluster().node(0).current_round();
}

void run_rounds(scenario::HierarchySystem& rig, std::int64_t rounds) {
  rig.run(round_len(rig.options()) * rounds);
}

struct ScalePoint {
  std::uint32_t components = 0;
  std::uint32_t rings = 0;
  std::uint64_t frus = 0;
  std::uint32_t dimension = 0;
  double msgs_per_round = 0.0;
  /// msgs_per_round / (N * (d+1)): flat across N when traffic is N·log N.
  double nlogn_ratio = 0.0;
  std::uint64_t detect_rounds = 0;
  std::uint64_t failovers = 0;
  bool victim_convicted = false;
};

ScalePoint run_scale_point(std::uint32_t components, std::uint32_t rings) {
  scenario::HierarchyOptions opts;
  opts.components = components;
  opts.rings = rings;
  scenario::HierarchySystem rig(opts);

  // Steady-state traffic over rounds 200..400 (round 0..200 warm up the
  // heartbeat/trust machinery).
  run_rounds(rig, 200);
  const std::uint64_t fanout0 =
      rig.sim().metrics().counter("diag.agent.route_fanout").value();
  const tta::RoundId r0 = current_round(rig);
  run_rounds(rig, 200);
  const std::uint64_t fanout1 =
      rig.sim().metrics().counter("diag.agent.route_fanout").value();
  const tta::RoundId r1 = current_round(rig);

  // Permanent failure: the victim's own assessor position dies with it,
  // so conviction must come from the surviving testers of its slice.
  const auto victim = static_cast<platform::ComponentId>(components / 2 + 1);
  const tta::RoundId inject_round = current_round(rig);
  rig.injector().inject_permanent_failure(victim, rig.sim().now());
  run_rounds(rig, 300);

  ScalePoint p;
  p.components = components;
  p.rings = rings;
  p.frus = static_cast<std::uint64_t>(components) * (1 + rings);
  p.dimension = rig.diag().topology().dimension();
  p.msgs_per_round = static_cast<double>(fanout1 - fanout0) /
                     static_cast<double>(r1 - r0);
  p.nlogn_ratio = p.msgs_per_round /
                  (static_cast<double>(components) * (p.dimension + 1));
  const auto violation = rig.diag().first_component_violation(victim);
  p.victim_convicted =
      violation.has_value() &&
      rig.diag().diagnose_component(victim).cls != fault::FaultClass::kNone;
  if (violation && *violation > inject_round) {
    p.detect_rounds = *violation - inject_round;
  }
  p.failovers = rig.diag().failovers();
  return p;
}

/// Section 2: kill every overlay position of an 8-component cube in turn.
/// Returns how many kills the composed view convicted with zero failovers.
std::uint32_t kill_sweep(std::uint32_t components, std::uint64_t& failovers) {
  std::uint32_t convicted = 0;
  for (platform::ComponentId p = 0; p < components; ++p) {
    scenario::HierarchyOptions opts;
    opts.components = components;
    scenario::HierarchySystem rig(opts);
    fault::ChaosInjector storm(rig.sim(), rig.system());
    run_rounds(rig, 100);
    storm.kill_host(p, rig.sim().now());
    run_rounds(rig, 400);
    const bool ok = rig.diag().first_component_violation(p).has_value() &&
                    rig.diag().component_trust(p) < 0.5;
    if (ok) ++convicted;
    failovers += rig.diag().failovers();
    std::printf("  kill position %2u -> %s (trust %.3f, failovers %llu)\n",
                unsigned(p), ok ? "convicted" : "MISSED",
                rig.diag().component_trust(p),
                static_cast<unsigned long long>(rig.diag().failovers()));
  }
  return convicted;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_hierarchy_scaling", argc, argv);
  std::printf("== E21 / hierarchical diagnosis scaling ==\n\n");

  // `--smoke`: the ctest/sanitizer entry point — small cubes only, no
  // 512-FRU flagship, so the sanitized run stays in CI budget. The full
  // bench (and the baseline gate) runs in the perf-smoke job.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }

  // --- 1. scaling sweep --------------------------------------------------
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {8, 1}, {16, 2}, {32, 3}, {64, 7}};  // {components, rings}
  if (smoke) sizes = {{8, 1}, {16, 2}};
  analysis::Table t({"components", "FRUs", "dim", "msgs/round",
                     "msgs / N(d+1)", "detect (rounds)", "failovers"});
  bool all_convicted = true;
  std::uint64_t sweep_failovers = 0;
  for (const auto& [n, rings] : sizes) {
    const ScalePoint p = run_scale_point(n, rings);
    t.add_row({std::to_string(p.components), std::to_string(p.frus),
               std::to_string(p.dimension),
               fmt(p.msgs_per_round), fmt(p.nlogn_ratio, "%.2f"),
               std::to_string(p.detect_rounds), std::to_string(p.failovers)});
    all_convicted = all_convicted && p.victim_convicted;
    sweep_failovers += p.failovers;
    const std::string suffix = "_" + std::to_string(p.components);
    reporter.set_info("msgs_per_round" + suffix, p.msgs_per_round);
    reporter.set_info("nlogn_ratio" + suffix, p.nlogn_ratio);
    reporter.set_info("detect_rounds" + suffix,
                      static_cast<double>(p.detect_rounds));
    if (p.components == sizes.back().first) {
      reporter.set_info("frus", static_cast<double>(p.frus));
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("  per-round routed copies / (N * (d+1)) stays flat: traffic is "
              "~ N log N, not N^2\n\n");

  // --- 2. kill any single assessor (N=8) ---------------------------------
  std::printf("-- kill-any-assessor sweep (8 positions) --\n");
  std::uint64_t kill_failovers = 0;
  const std::uint32_t convicted = kill_sweep(8, kill_failovers);
  std::printf("  %u/8 positions convicted after their own death, "
              "%llu legacy failovers\n\n",
              convicted, static_cast<unsigned long long>(kill_failovers));

  // --- 3. 512-FRU flagship with a concurrent assessor loss ----------------
  bool flagship_converged = true;
  std::uint64_t flagship_failovers = 0;
  if (!smoke) {
    std::printf("-- 512-FRU flagship: fault + assessor loss --\n");
    scenario::HierarchyOptions big;
    big.components = 64;
    big.rings = 7;
    scenario::HierarchySystem rig(big);
    fault::ChaosInjector storm(rig.sim(), rig.system());
    run_rounds(rig, 150);
    rig.injector().inject_permanent_failure(21, rig.sim().now());
    storm.kill_host(42, rig.sim().now() + round_len(big) * 20);
    run_rounds(rig, 400);
    const bool faulty_convicted =
        rig.diag().first_component_violation(21).has_value() &&
        rig.diag().component_trust(21) < 0.5;
    const bool dead_assessor_convicted =
        rig.diag().first_component_violation(42).has_value() &&
        rig.diag().component_trust(42) < 0.5;
    const auto stats = rig.diag().hierarchy_stats();
    flagship_converged = faulty_convicted && dead_assessor_convicted;
    flagship_failovers = rig.diag().failovers();
    std::printf("  victim 21 %s, dead assessor 42 %s, failovers %llu\n",
                faulty_convicted ? "convicted" : "MISSED",
                dead_assessor_convicted ? "convicted" : "MISSED",
                static_cast<unsigned long long>(flagship_failovers));
    std::printf("  deltas: emitted %llu forwarded %llu accepted %llu "
                "duplicate %llu rejected %llu\n\n",
                static_cast<unsigned long long>(stats.deltas_emitted),
                static_cast<unsigned long long>(stats.deltas_forwarded),
                static_cast<unsigned long long>(stats.deltas_accepted),
                static_cast<unsigned long long>(stats.deltas_duplicate),
                static_cast<unsigned long long>(stats.deltas_rejected));
  }

  const bool ok = all_convicted && convicted == 8 && sweep_failovers == 0 &&
                  kill_failovers == 0 && flagship_converged &&
                  flagship_failovers == 0;
  reporter.set_info("scale_convicted", all_convicted ? 1.0 : 0.0);
  reporter.set_info("kill_convicted", static_cast<double>(convicted));
  reporter.set_info("failovers",
                    static_cast<double>(sweep_failovers + kill_failovers +
                                        flagship_failovers));
  reporter.set_info("flagship_converged", flagship_converged ? 1.0 : 0.0);
  std::printf(ok ? "hierarchical diagnosis holds its bound end to end\n"
                 : "E21 ACCEPTANCE VIOLATION (see above)\n");

  const int rc = reporter.finish();
  return rc != 0 ? rc : (ok ? 0 : 1);
}
