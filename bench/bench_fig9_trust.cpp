// E3 — Fig. 9: LRU assessment trajectories.
//
// One component wears out (trajectory A: growing confidence in a
// specification violation = falling trust) while a second stays healthy
// (trajectory B: conformance, trust hugs 1.0). Prints the two trust
// series over time as the paper's two arrows.
#include <cstdio>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "scenario/fig10.hpp"

using namespace decos;

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig9_trust", argc, argv);
  std::printf("== E3 / Fig. 9: LRU assessment trajectories ==\n\n");

  scenario::Fig10System rig({.seed = 301});
  rig.injector().inject_wearout(2, sim::SimTime{0} + sim::milliseconds(500),
                                sim::milliseconds(700), 0.8,
                                sim::milliseconds(10));
  rig.run(sim::seconds(8));

  auto& assessor = rig.diag().assessor();
  const auto& faulty = assessor.component_trajectory(2);   // arrow A
  const auto& healthy = assessor.component_trajectory(4);  // arrow B

  analysis::Table t({"round", "t [s]", "trust A (wearing, comp 2)",
                     "trust B (healthy, comp 4)"});
  const std::size_t n = std::min(faulty.size(), healthy.size());
  const std::size_t stride = n > 24 ? n / 24 : 1;
  for (std::size_t i = 0; i < n; i += stride) {
    const double sec = static_cast<double>(faulty[i].round) * 2.5e-3;
    t.add_row({std::to_string(faulty[i].round), analysis::Table::num(sec, 2),
               analysis::Table::num(faulty[i].trust, 3),
               analysis::Table::num(healthy[i].trust, 3)});
  }
  std::printf("%s\n", t.render().c_str());

  const auto d = assessor.diagnose_component(2);
  std::printf("final: trust A=%.3f -> diagnosis %s (%s); trust B=%.3f (%s)\n",
              faulty.back().trust, fault::to_string(d.cls),
              fault::to_string(d.action()), healthy.back().trust,
              fault::to_string(assessor.diagnose_component(4).cls));
  std::printf("expected shape: A descends toward violation, B stays near "
              "1.0 (the two arrows of Fig. 9)\n");

  rig.diag().record_detection_latency(rig.injector());
  reporter.absorb(rig.sim().metrics());
  reporter.set_info("final_trust_wearing", faulty.back().trust);
  reporter.set_info("final_trust_healthy", healthy.back().trust);
  return reporter.finish();
}
