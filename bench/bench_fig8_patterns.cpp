// E2 — Fig. 8: fault patterns in the time, space and value dimensions.
//
// Injects the figure's three archetypes — wearout, massive transient
// (EMI), connector fault — into the Fig. 10 cluster and measures the
// signature the diagnostic DAS actually observed in each dimension,
// then prints the observed table next to the paper's stated pattern and
// the classifier's verdict.
#include <cstdio>
#include <set>

#include "analysis/table.hpp"
#include "diag/classifier.hpp"
#include "obs/bench_io.hpp"
#include "scenario/fig10.hpp"

using namespace decos;

namespace {

struct Signature {
  std::size_t episodes = 0;
  double gap_trend = 1.0;  // late/early mean episode gap (<1 = accelerating)
  std::size_t components_affected = 0;
  std::string dominant_value;
  std::string verdict;
};

Signature measure(const scenario::Fig10System& /*rig*/, diag::Assessor& assessor,
                  std::uint32_t components, tta::RoundId now) {
  Signature sig;
  std::set<platform::ComponentId> affected;
  std::uint64_t crc = 0, timing = 0, omission = 0;
  std::vector<tta::RoundId> all_rounds;
  const auto& ev = assessor.evidence();
  for (platform::ComponentId c = 0; c < components; ++c) {
    bool touched = false;
    for (const auto& [r, sr] : ev.about(c)) {
      touched = true;
      crc += sr.crc;
      timing += sr.timing;
      omission += sr.omission;
    }
    for (const auto& [r, orow] : ev.reported_by(c)) {
      if (orow.senders_reported.size() >= 2) {
        touched = true;
        all_rounds.push_back(r);
      }
    }
    if (touched) affected.insert(c);
  }
  std::sort(all_rounds.begin(), all_rounds.end());
  all_rounds.erase(std::unique(all_rounds.begin(), all_rounds.end()),
                   all_rounds.end());
  const auto eps = diag::episodes_of(all_rounds, 25);
  sig.episodes = eps.size();
  if (eps.size() >= 4) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < eps.size(); ++i) {
      gaps.push_back(static_cast<double>(eps[i].first - eps[i - 1].last));
    }
    const std::size_t half = gaps.size() / 2;
    double early = 0, late = 0;
    for (std::size_t i = 0; i < half; ++i) early += gaps[i];
    for (std::size_t i = gaps.size() - half; i < gaps.size(); ++i) late += gaps[i];
    if (early > 0) sig.gap_trend = late / early;
  }
  sig.components_affected = affected.size();
  sig.dominant_value = crc >= timing && crc >= omission ? "bit corruption"
                       : omission >= timing             ? "message omission"
                                                        : "timing deviation";
  (void)now;
  return sig;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig8_patterns", argc, argv);
  std::printf("== E2 / Fig. 8: fault patterns in time, space, value ==\n\n");

  analysis::Table t({"pattern", "paper: time", "measured: episodes(gap-trend)",
                     "paper: space", "measured: #comps", "paper: value",
                     "measured: dominant", "classifier verdict"});

  // --- wearout on component 1 ------------------------------------------------
  {
    scenario::Fig10System rig({.seed = 101});
    rig.injector().inject_wearout(1, sim::SimTime{0} + sim::milliseconds(300),
                                  sim::milliseconds(600), 0.7,
                                  sim::milliseconds(10));
    rig.run(sim::seconds(6));
    auto& assessor = rig.diag().assessor();
    // For wearout the pattern lives in the *subject* rounds of component 1.
    std::vector<tta::RoundId> rounds;
    for (const auto& [r, sr] : assessor.evidence().about(1)) {
      if (sr.observers.size() >= 2) rounds.push_back(r);
    }
    const auto eps = diag::episodes_of(rounds, 25);
    double trend = 1.0;
    if (eps.size() >= 4) {
      std::vector<double> gaps;
      for (std::size_t i = 1; i < eps.size(); ++i) {
        gaps.push_back(static_cast<double>(eps[i].first - eps[i - 1].last));
      }
      const std::size_t half = gaps.size() / 2;
      double early = 0, late = 0;
      for (std::size_t i = 0; i < half; ++i) early += gaps[i];
      for (std::size_t i = gaps.size() - half; i < gaps.size(); ++i) {
        late += gaps[i];
      }
      if (early > 0) trend = late / early;
    }
    const auto d = assessor.diagnose_component(1);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%zu (x%.2f)", eps.size(), trend);
    t.add_row({"wearout", "increasing frequency", buf, "one component only",
               "1", "increasing deviation", "bit corruption",
               fault::to_string(d.cls)});
    rig.diag().record_detection_latency(rig.injector());
    reporter.absorb(rig.sim().metrics());
    reporter.set_info("wearout_episodes", static_cast<double>(eps.size()));
  }

  // --- massive transient: EMI over components 0..2 -----------------------------
  {
    scenario::Fig10System rig({.seed = 102});
    rig.injector().inject_emi_burst(1.0, 1.1, sim::SimTime{0} + sim::milliseconds(800),
                                    sim::milliseconds(12));
    rig.run(sim::seconds(3));
    auto& assessor = rig.diag().assessor();
    const auto sig = measure(rig, assessor, 5, rig.round());
    const auto d = assessor.diagnose_component(1);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%zu (x%.2f)", sig.episodes, sig.gap_trend);
    t.add_row({"massive transient", "same time (small delta)", buf,
               "multiple comps, proximity",
               std::to_string(sig.components_affected), "multiple bit flips",
               sig.dominant_value, fault::to_string(d.cls)});
    rig.diag().record_detection_latency(rig.injector());
    reporter.absorb(rig.sim().metrics());
    reporter.set_info("emi_components_affected",
                      static_cast<double>(sig.components_affected));
  }

  // --- connector fault on component 3 -------------------------------------------
  {
    scenario::Fig10System rig({.seed = 103});
    rig.injector().inject_connector_fault(3, sim::SimTime{0} + sim::milliseconds(300),
                                          sim::milliseconds(250),
                                          sim::milliseconds(10), 0.8);
    rig.run(sim::seconds(5));
    auto& assessor = rig.diag().assessor();
    // Connector pattern lives in the observer rounds of component 3.
    std::vector<tta::RoundId> rounds;
    for (const auto& [r, orow] : assessor.evidence().reported_by(3)) {
      if (orow.senders_reported.size() >= 2) rounds.push_back(r);
    }
    const auto eps = diag::episodes_of(rounds, 25);
    const auto d = assessor.diagnose_component(3);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%zu (arbitrary)", eps.size());
    t.add_row({"connector fault", "arbitrary", buf, "one component only", "1",
               "message omissions", "message omission",
               fault::to_string(d.cls)});
    rig.diag().record_detection_latency(rig.injector());
    reporter.absorb(rig.sim().metrics());
    reporter.set_info("connector_episodes", static_cast<double>(eps.size()));
  }

  std::printf("%s\n", t.render().c_str());
  std::printf("expected: wearout -> component-internal; massive transient -> "
              "component-external; connector -> component-borderline\n");
  return reporter.finish();
}
