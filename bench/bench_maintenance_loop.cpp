// E17 — closed-loop maintenance: Fig. 11 executed, not just recommended.
//
// Every archetype of the standard campaign runs with a live
// MaintenanceExecutor: the diagnostic report opens a work order, a
// simulated technician performs the Fig. 11 action (replacement from a
// bounded spare pool, software update, transducer swap, connector
// re-seating, configuration restore), and the repair is verified by the
// FRU's trust reconverging above the conformance threshold. Measured per
// archetype x seed: recovery rate, time-to-recovery, repairs
// attempted/verified, retries, and NFF removals scored against the
// injector's ground truth.
//
// Two directed scenarios close the paper's economics argument: the naive
// "swap the box" strategy on a connector fault produces a *measured* NFF
// removal followed by a successful model-guided retry, and a drained
// spare pool degrades gracefully into quarantine plus the
// `maintenance-degraded` meta-ONA.
#include <cstdio>
#include <string>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "scenario/maintenance.hpp"

using namespace decos;

namespace {

scenario::Archetype find_archetype(const std::vector<scenario::Archetype>& all,
                                   const std::string& name) {
  for (const auto& a : all) {
    if (a.name == name) return a;
  }
  std::fprintf(stderr, "unknown archetype %s\n", name.c_str());
  std::exit(2);
}

std::string trajectory_string(
    const std::vector<fault::MaintenanceAction>& actions) {
  std::string out;
  for (const auto a : actions) {
    if (!out.empty()) out += " -> ";
    out += fault::to_string(a);
  }
  return out.empty() ? std::string("(none)") : out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_maintenance_loop", argc, argv);
  std::printf("== E17: closed-loop maintenance (Fig. 11 executed in-sim) ==\n\n");

  const auto archetypes = scenario::standard_archetypes();
  const auto seeds = reporter.seeds_or({901, 902, 903});

  const scenario::MaintenanceOptions options;
  const auto result = scenario::run_maintenance_campaign(
      archetypes, seeds, options, {}, reporter.jobs());

  analysis::Table t({"archetype", "true class", "recovered", "repairs",
                     "verified", "retries", "NFF", "spares", "mean TTR ms"});
  for (const auto& row : result.per_archetype) {
    char rec[32], ttr[32];
    std::snprintf(rec, sizeof rec, "%zu/%zu", row.recovered, row.runs);
    std::snprintf(ttr, sizeof ttr, "%.1f", row.mean_ttr_ms());
    t.add_row({row.name, fault::to_string(row.truth), rec,
               std::to_string(row.repairs_attempted),
               std::to_string(row.repairs_verified),
               std::to_string(row.retries), std::to_string(row.nff_removals),
               std::to_string(row.spares_consumed),
               row.ttr_samples == 0 ? "-" : ttr});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "model-guided loop, %zu runs: %zu recovered, %llu repairs "
      "(%llu verified, %llu retries), %llu NFF removals, %llu spares used\n\n",
      result.runs, result.recovered,
      static_cast<unsigned long long>(result.repairs_attempted),
      static_cast<unsigned long long>(result.repairs_verified),
      static_cast<unsigned long long>(result.retries),
      static_cast<unsigned long long>(result.nff_removals),
      static_cast<unsigned long long>(result.spares_consumed));

  // --- directed: naive strategy mis-repair -> measured NFF -> retry ------
  // The pre-DECOS garage pulls the box for the connector's hardware-
  // flavoured symptoms; the unit retests OK (NFF), the symptom recurs,
  // and the retry's model-guided second opinion re-seats the connector.
  scenario::MaintenanceOptions naive = options;
  naive.executor.strategy = analysis::Strategy::kNaiveReplace;
  scenario::Fig10Options naive_rig;
  // The connector archetype targets component 3, the default assessor
  // host; home the assessor elsewhere so the replacement's restart does
  // not take the diagnostic DAS down with it.
  naive_rig.assessor_host = 0;
  const auto misrepair = scenario::run_maintenance_scenario(
      find_archetype(archetypes, "connector"), seeds.front(), naive,
      naive_rig);
  std::printf("naive garage on connector fault (seed %llu):\n",
              static_cast<unsigned long long>(seeds.front()));
  std::printf("  action trajectory: %s\n",
              trajectory_string(misrepair.run.trajectory).c_str());
  std::printf(
      "  NFF removals=%llu retries=%llu verified=%llu recovered=%s "
      "final trust=%.3f\n\n",
      static_cast<unsigned long long>(misrepair.run.nff_removals),
      static_cast<unsigned long long>(misrepair.run.retries),
      static_cast<unsigned long long>(misrepair.run.repairs_verified),
      misrepair.run.recovered ? "yes" : "no", misrepair.run.final_trust);

  // --- directed: spare exhaustion -> quarantine + meta-ONA ---------------
  scenario::MaintenanceOptions no_spares = options;
  no_spares.executor.spares = 0;
  const auto exhausted = scenario::run_maintenance_scenario(
      find_archetype(archetypes, "permanent"), seeds.front(), no_spares);
  std::printf("permanent failure with an empty spare pool (seed %llu):\n",
              static_cast<unsigned long long>(seeds.front()));
  std::printf(
      "  quarantines=%llu maintenance-degraded ONA=%s degraded jobs=%zu "
      "recovered=%s\n\n",
      static_cast<unsigned long long>(exhausted.run.quarantines),
      exhausted.degraded_ona ? "asserted" : "missing",
      exhausted.degraded_jobs.size(), exhausted.run.recovered ? "yes" : "no");

  reporter.absorb(result.metrics);
  reporter.absorb(misrepair.run.metrics);
  reporter.absorb(exhausted.run.metrics);
  reporter.set_info("recovered_ratio",
                    result.runs == 0
                        ? 0.0
                        : static_cast<double>(result.recovered) /
                              static_cast<double>(result.runs));
  reporter.set_info("repairs_verified",
                    static_cast<double>(result.repairs_verified));
  reporter.set_info("nff_removals_measured",
                    static_cast<double>(result.nff_removals +
                                        misrepair.run.nff_removals));
  reporter.set_info("spare_exhaustion_quarantines",
                    static_cast<double>(exhausted.run.quarantines));
  std::printf(
      "expected shape: every hardware archetype's trust reconverges after "
      "a verified repair; the naive strategy's removal retests OK and the "
      "retry fixes the connector; the empty pool quarantines the FRU "
      "instead of wedging the loop\n");
  return reporter.finish();
}
