// E12 — Section III-E: detection coverage, DECOS vs legacy OBD.
//
// "In current automotive OBD systems, transient failures that are lasting
// for more than 500 ms are recorded. Failures with a significantly
// shorter duration cannot be detected." The time-triggered core, in
// contrast, "ensures that transient failures longer than the length of a
// slot of the TDMA round can be detected by other FRUs."
//
// This experiment injects transient outages of swept durations and
// measures who detects them: the DECOS diagnostic DAS (omission evidence
// about the component) vs an OBD recorder with the 500 ms threshold.
#include <cstdio>

#include "analysis/obd.hpp"
#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "scenario/fig10.hpp"

using namespace decos;

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_obd_comparison", argc, argv);
  obs::Registry metrics;
  std::printf("== E12 / detection coverage: DECOS vs 500 ms OBD ==\n\n");

  analysis::Table t({"outage [ms]", "vs TDMA round (2.5 ms)",
                     "DECOS detected", "OBD (500 ms) detected"});

  for (const std::int64_t outage_ms : {1, 3, 10, 30, 50, 120, 400, 600, 1500}) {
    int decos_hits = 0, obd_hits = 0;
    const int trials = 5;
    for (int trial = 0; trial < trials; ++trial) {
      scenario::Fig10System rig(
          {.seed = 1200 + static_cast<std::uint64_t>(trial)});
      const auto start = sim::SimTime{0} + sim::milliseconds(700);
      rig.injector().inject_transient_outage(2, start,
                                             sim::milliseconds(outage_ms));

      // The OBD box on the vehicle sees the same outage.
      analysis::ObdRecorder obd;
      if (obd.offer(2, start, sim::milliseconds(outage_ms))) ++obd_hits;

      rig.run(sim::seconds(2) + sim::milliseconds(outage_ms));

      // DECOS detection: any credible omission evidence about component 2.
      diag::FeatureParams fp;
      if (!diag::sender_episodes(rig.diag().assessor().evidence(), 2, fp)
               .empty()) {
        ++decos_hits;
      }
    }
    char a[16], b[16];
    std::snprintf(a, sizeof a, "%d/%d", decos_hits, trials);
    std::snprintf(b, sizeof b, "%d/%d", obd_hits, trials);
    t.add_row({std::to_string(outage_ms),
               outage_ms < 3 ? "below round" : "above round", a, b});
    const std::string label = "outage_ms=" + std::to_string(outage_ms);
    metrics.counter("coverage.decos_detected", label)
        .inc(static_cast<std::uint64_t>(decos_hits));
    metrics.counter("coverage.obd_detected", label)
        .inc(static_cast<std::uint64_t>(obd_hits));
    metrics.counter("coverage.trials", label)
        .inc(static_cast<std::uint64_t>(trials));
  }
  reporter.absorb(metrics);

  std::printf("%s\n", t.render().c_str());
  std::printf("expected shape: DECOS detects every outage longer than about "
              "one TDMA round (2.5 ms here) — including the paper's < 50 ms "
              "transients, which are the wearout indicator; the OBD baseline "
              "is blind below 500 ms and misses all of them\n");
  return reporter.finish();
}
