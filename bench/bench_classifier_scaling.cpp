// E10 — throughput of the diagnostic machinery (google-benchmark).
//
// The diagnostic DAS runs as an embedded job on a component, so the
// per-round cost of ingesting symptoms and the on-demand cost of
// classification bound how large a cluster one assessor can serve.
// Benchmarks: symptom wire codec, evidence ingest, component
// classification vs evidence-window size, and full-system simulation
// rate vs cluster size. Plus E16: wall-clock scaling of the parallel
// experiment engine — run with `--jobs {1,2,4,8}` and compare
// BM_ExperimentBatch real time.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "diag/classifier.hpp"
#include "diag/evidence.hpp"
#include "diag/symptom.hpp"
#include "exec/runner.hpp"
#include "obs/bench_io.hpp"
#include "scenario/fig10.hpp"

using namespace decos;

namespace {

// Worker count for BM_ExperimentBatch, set from --jobs in main before
// google-benchmark takes over.
unsigned g_jobs = 1;

void BM_SymptomCodec(benchmark::State& state) {
  diag::Symptom s;
  s.type = diag::SymptomType::kSlotCrcError;
  s.observer = 1;
  s.subject_component = 2;
  s.subject_job = 7;
  s.round = 1000;
  s.magnitude = 3.5;
  for (auto _ : state) {
    vnet::Message m = diag::encode(s, 1002);
    m.sent_round = 1002;
    auto back = diag::decode(m, 1);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_SymptomCodec);

void BM_EvidenceIngest(benchmark::State& state) {
  diag::EvidenceStore store;
  diag::Symptom s;
  s.type = diag::SymptomType::kSlotCrcError;
  tta::RoundId r = 0;
  for (auto _ : state) {
    s.round = r++;
    s.observer = static_cast<platform::ComponentId>(r % 5);
    s.subject_component = static_cast<platform::ComponentId>((r + 1) % 5);
    store.ingest(s);
    if (r % 4096 == 0) store.prune(r);
  }
}
BENCHMARK(BM_EvidenceIngest);

/// Classification cost as a function of accumulated evidence volume.
void BM_ClassifyComponent(benchmark::State& state) {
  const auto rounds = static_cast<tta::RoundId>(state.range(0));
  diag::EvidenceStore store;
  diag::Symptom s;
  s.type = diag::SymptomType::kSlotCrcError;
  s.subject_component = 1;
  // Episodic evidence: 5 symptomatic rounds every 100.
  for (tta::RoundId r = 0; r < rounds; ++r) {
    if (r % 100 < 5) {
      for (platform::ComponentId o = 2; o < 5; ++o) {
        s.observer = o;
        s.round = r;
        store.ingest(s);
      }
    }
  }
  diag::Classifier classifier({}, fault::SpatialLayout::linear(5));
  for (auto _ : state) {
    auto d = classifier.classify_component(store, 1, rounds, 5);
    benchmark::DoNotOptimize(d);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ClassifyComponent)->Range(1'000, 64'000)->Complexity();

/// End-to-end simulation rate of the full diagnosed system vs cluster
/// size: simulated seconds per wall second.
void BM_FullSystemSimulation(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    scenario::Fig10Options opts;
    opts.seed = 42;
    opts.components = nodes;
    scenario::Fig10System rig(opts);
    rig.run(sim::milliseconds(250));
    benchmark::DoNotOptimize(rig.diag().assessor().symptoms_processed());
  }
  state.counters["nodes"] = nodes;
}
BENCHMARK(BM_FullSystemSimulation)->Arg(5)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

/// E16 — a fixed batch of independent Fig. 10 simulations executed
/// through the experiment engine with --jobs workers. The per-run work is
/// identical for every job count (the ordered merge guarantees identical
/// results too), so the real-time ratio between --jobs 1 and --jobs N is
/// the engine's wall-clock speedup.
void BM_ExperimentBatch(benchmark::State& state) {
  const std::size_t batch = 8;
  std::uint64_t total = 0;
  for (auto _ : state) {
    exec::ExperimentRunner runner(g_jobs);
    std::vector<std::function<std::uint64_t()>> runs;
    runs.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      runs.push_back([i] {
        scenario::Fig10Options opts;
        opts.seed = 42 + i;
        scenario::Fig10System rig(opts);
        rig.run(sim::milliseconds(250));
        return rig.diag().assessor().symptoms_processed();
      });
    }
    total = 0;
    for (auto& outcome : runner.run(std::move(runs))) {
      if (outcome.ok()) total += *outcome.result;
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["jobs"] = g_jobs;
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_ExperimentBatch)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

// Custom main: peel off --json/--csv for the metrics reporter, forward the
// rest of argv to google-benchmark untouched.
int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_classifier_scaling", argc, argv);
  g_jobs = reporter.jobs();
  int fargc = reporter.argc();
  benchmark::Initialize(&fargc, reporter.argv());
  if (benchmark::ReportUnrecognizedArguments(fargc, reporter.argv())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.finish();
}
