// E7 — Section III-E: the quantitative fault-hypothesis assumptions, and
// the alpha-count discrimination they enable.
//
// Verifies by sampling that the implemented rate models reproduce the
// paper's numbers (100 FIT permanent ~ 1000 yr MTTF; 100 000 FIT
// transient ~ 1 yr; EMI bursts ~10 ms; transient outages < 50 ms), then
// sweeps the alpha-count threshold against the naive K-in-window counter
// on the transient-vs-internal discrimination task the paper assigns to
// it (Section V-C).
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "reliability/alpha_count.hpp"
#include "reliability/fit.hpp"
#include "reliability/hazard.hpp"
#include "sim/rng.hpp"

using namespace decos;
using reliability::paper::kEmiBurstDuration;
using reliability::paper::kPermanentHardware;
using reliability::paper::kTransientHardware;
using reliability::paper::kTransientOutageMax;

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_hypothesis_rates", argc, argv);
  obs::Registry metrics;
  std::printf("== E7 / Section III-E: fault-hypothesis rates & alpha-count ==\n\n");

  // --- rate verification -----------------------------------------------------
  sim::Rng rng(707);
  analysis::Table rates({"assumption", "paper value", "model value",
                         "sampled mean (n=20000)"});
  {
    const reliability::ExponentialHazard h(kPermanentHardware);
    obs::Histogram sampled =
        metrics.histogram("reliability.sampled_ttf_hours", "rate=permanent");
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
      const double hours = h.sample_ttf(rng, sim::Duration{}).hours();
      sampled.record(static_cast<std::int64_t>(hours));
      sum += hours;
    }
    rates.add_row({"permanent hw failure rate", "100 FIT (~1000 yr)",
                   analysis::Table::num(kPermanentHardware.mttf_hours() / 8760.0, 0) +
                       " yr MTTF",
                   analysis::Table::num(sum / 20000.0 / 8760.0, 0) + " yr"});
  }
  {
    const reliability::ExponentialHazard h(kTransientHardware);
    obs::Histogram sampled =
        metrics.histogram("reliability.sampled_ttf_hours", "rate=transient");
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
      const double hours = h.sample_ttf(rng, sim::Duration{}).hours();
      sampled.record(static_cast<std::int64_t>(hours));
      sum += hours;
    }
    rates.add_row({"transient hw failure rate", "100000 FIT (~1 yr)",
                   analysis::Table::num(kTransientHardware.mttf_hours() / 8760.0, 2) +
                       " yr MTTF",
                   analysis::Table::num(sum / 20000.0 / 8760.0, 2) + " yr"});
  }
  rates.add_row({"transient outage duration", "< 50 ms (steering est.)",
                 analysis::Table::num(kTransientOutageMax.ms(), 0) + " ms cap",
                 "-"});
  rates.add_row({"correlated EMI burst", "~10 ms (ISO 7637)",
                 analysis::Table::num(kEmiBurstDuration.ms(), 0) + " ms",
                 "-"});
  std::printf("%s\n", rates.render().c_str());

  // --- alpha-count discrimination sweep -------------------------------------
  //
  // Task: judged once per round, an FRU fails with rate r_ext (ambient
  // transients) if healthy, or with the much higher rate r_int if it has
  // an internal intermittent fault. Sweep the threshold; measure false
  // alarms (healthy flagged) and missed detections (internal not flagged
  // within the horizon). Compare with the naive K-in-window counter.
  const double r_ext = 1.0 / 2000.0;  // ambient transient per judgement round
  const double r_int = 1.0 / 50.0;    // internal intermittent fault
  const int rounds = 20000, population = 400;

  analysis::Table sweep({"threshold", "alpha: false-alarm", "alpha: miss",
                         "window(K=thr,N=200): false-alarm", "window: miss"});
  for (const double threshold : {2.0, 3.0, 4.0, 6.0, 8.0}) {
    int alpha_fa = 0, alpha_miss = 0, win_fa = 0, win_miss = 0;
    for (int d = 0; d < population; ++d) {
      sim::Rng r1(static_cast<std::uint64_t>(d) * 7919 + 13);
      reliability::AlphaCount healthy{{1.0, 0.995, threshold}};
      reliability::AlphaCount faulty{{1.0, 0.995, threshold}};
      reliability::WindowCount whealthy(200, static_cast<std::uint32_t>(threshold));
      reliability::WindowCount wfaulty(200, static_cast<std::uint32_t>(threshold));
      bool ah = false, af = false, wh = false, wf = false;
      for (int t = 0; t < rounds; ++t) {
        const bool fe = r1.bernoulli(r_ext);
        const bool fi = r1.bernoulli(r_int);
        healthy.observe(fe);
        faulty.observe(fi);
        whealthy.observe(fe);
        wfaulty.observe(fi);
        ah |= healthy.flagged();
        af |= faulty.flagged();
        wh |= whealthy.flagged();
        wf |= wfaulty.flagged();
      }
      alpha_fa += ah ? 1 : 0;
      alpha_miss += af ? 0 : 1;
      win_fa += wh ? 1 : 0;
      win_miss += wf ? 0 : 1;
    }
    auto pct = [&](int n) {
      return analysis::Table::num(100.0 * n / population, 1) + "%";
    };
    sweep.add_row({analysis::Table::num(threshold, 0), pct(alpha_fa),
                   pct(alpha_miss), pct(win_fa), pct(win_miss)});
    const std::string label =
        "thr=" + analysis::Table::num(threshold, 0);
    metrics.counter("alpha.false_alarms", label).inc(
        static_cast<std::uint64_t>(alpha_fa));
    metrics.counter("alpha.misses", label).inc(
        static_cast<std::uint64_t>(alpha_miss));
    metrics.counter("window.false_alarms", label).inc(
        static_cast<std::uint64_t>(win_fa));
    metrics.counter("window.misses", label).inc(
        static_cast<std::uint64_t>(win_miss));
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf("expected shape: a mid threshold gives alpha-count ~0%% miss "
              "with low false alarms; the memoryless window counter needs a "
              "higher threshold to control false alarms and then starts "
              "missing — the decay memory is what buys the discrimination\n");
  reporter.absorb(metrics);
  reporter.set_info("population", static_cast<double>(population));
  return reporter.finish();
}
