// E14 — capstone: maintenance policies over compressed vehicle lifetimes.
//
// A fleet of vehicles runs the Fig. 10 system; each vehicle's faults are
// *sampled from the reliability models* (Section III-E rates, wearout and
// connector probabilities, ambient EMI) by the LifetimeDriver rather than
// hand-placed. At the end of each compressed life the garage decides per
// flagged FRU under two policies:
//   naive        — swap the box for any hardware-looking symptom,
//   model-guided — the Fig. 11 action for the diagnosed class.
// Scored against the injector's ground truth: removals, NFF, eliminated
// faults, wasted dollars. This is the paper's whole argument, run end to
// end from failure physics to garage economics.
#include <cstdio>
#include <map>

#include "analysis/confusion.hpp"
#include "analysis/nff.hpp"
#include "analysis/table.hpp"
#include "fault/lifetime.hpp"
#include "obs/bench_io.hpp"
#include "scenario/fig10.hpp"

using namespace decos;

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_lifetime_policy", argc, argv);
  std::printf("== E14 / maintenance policies over sampled vehicle "
              "lifetimes ==\n\n");

  const std::size_t fleet_size = 12;
  analysis::NffAccounting naive, guided;
  analysis::ConfusionMatrix cm;
  std::uint64_t total_faults = 0;

  for (std::size_t vehicle = 0; vehicle < fleet_size; ++vehicle) {
    scenario::Fig10Options opts;
    opts.seed = 1400 + vehicle;
    opts.assessor_host = 3;
    scenario::Fig10System rig(opts);

    fault::LifetimeDriver driver(
        rig.injector(), rig.system(),
        rig.sim().fork_rng("lifetime." + std::to_string(vehicle)));
    fault::LifetimeDriver::Params lp;
    lp.horizon = sim::seconds(8);
    lp.wearout_prob = 0.12;
    lp.connector_prob = 0.15;
    lp.heisenbug_prob = 0.08;
    lp.config_fault_prob = 0.15;
    const auto ids = driver.drive(lp);
    total_faults += ids.size();

    rig.run(lp.horizon);

    // Garage: judge every FRU the diagnosis flags.
    auto& assessor = rig.diag().assessor();
    for (platform::ComponentId c = 0; c < rig.system().component_count();
         ++c) {
      const auto d = assessor.diagnose_component(c);
      if (d.cls == fault::FaultClass::kNone) continue;
      const auto truth = rig.injector().truth_for_component(c);
      cm.add(truth, d.cls);
      naive.record(truth, decide(analysis::Strategy::kNaiveReplace, d.cls));
      guided.record(truth, decide(analysis::Strategy::kModelGuided, d.cls));
    }
    for (platform::JobId j : rig.app_jobs()) {
      const auto d = assessor.diagnose_job(j);
      if (d.cls == fault::FaultClass::kNone) continue;
      const auto truth_job = rig.injector().truth_for_job(j);
      // A job flagged because its host is internally faulty scores
      // against the component's truth.
      const auto truth = truth_job != fault::FaultClass::kNone
                             ? truth_job
                             : rig.injector().truth_for_component(
                                   rig.system().job(j).host());
      cm.add(truth, d.cls);
      naive.record(truth, decide(analysis::Strategy::kNaiveReplace, d.cls));
      guided.record(truth, decide(analysis::Strategy::kModelGuided, d.cls));
    }
    rig.diag().record_detection_latency(rig.injector());
    reporter.absorb(rig.sim().metrics());
  }

  std::printf("fleet: %zu vehicles, %llu sampled faults, %llu garage "
              "decisions\n\n",
              fleet_size, static_cast<unsigned long long>(total_faults),
              static_cast<unsigned long long>(naive.visits()));
  std::printf("diagnosis vs ground truth over the fleet:\n%s\n",
              cm.to_table().c_str());
  std::printf("%s\n", naive.summary("naive").c_str());
  std::printf("%s\n", guided.summary("model-guided").c_str());
  std::printf("\nexpected shape: the model-guided policy eliminates most "
              "faults with a fraction of the removals; naive NFF is "
              "dominated by EMI/SEU and connector classes\n");
  reporter.set_info("fleet_size", static_cast<double>(fleet_size));
  reporter.set_info("sampled_faults", static_cast<double>(total_faults));
  reporter.set_info("naive_nff_ratio", naive.nff_ratio());
  reporter.set_info("guided_nff_ratio", guided.nff_ratio());
  return reporter.finish();
}
