// E18 — kernel hot-path microbenchmark: events/sec and allocations/event
// through the discrete-event kernel, allocations/round through the vnet
// mux spine (send -> drain -> pack -> unpack), and allocations/symptom
// through the diagnostic evidence ingest, measured with a counting
// operator-new hook.
//
// The scheduling section reproduces the event population of a steady
// TDMA simulation: staggered periodic timers (slot ticks), one-shot
// self-rescheduling chains (frame deliveries), and watchdog cancel/re-arm
// loops (the assessor failover detector). The mux section runs the
// per-round message path on caller-provided reusable buffers. Both
// sections warm up first so slab/arena/buffer high-water marks are
// reached, then assert nothing about the numbers — they are *reported*
// (stdout + --json) so the experiment table stays measured, not asserted;
// sanitizer builds interpose operator new and would skew any hard zero.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string_view>

#include "diag/evidence.hpp"
#include "diag/symptom.hpp"
#include "obs/bench_io.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "vnet/message.hpp"
#include "vnet/multiplexer.hpp"
#include "vnet/network_plan.hpp"

namespace {
unsigned long long g_allocs = 0;
}

// Counting global allocator hooks: every variant funnels through malloc so
// the count covers array, nothrow and over-aligned forms alike.
void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_allocs;
  const auto align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace decos;

struct SectionResult {
  double per_sec = 0.0;
  double allocs_per_unit = 0.0;
};

/// Scheduling hot path: 16 periodic timers (1 ms period, 61 us stagger),
/// 8 one-shot re-scheduling chains (501 us), 4 watchdog cancel/re-arm
/// loops (10 ms timeout kicked every 733 us). 200 ms sim-time warm-up,
/// then measured to `horizon` sim-seconds.
SectionResult bench_scheduling(int horizon_seconds) {
  sim::Simulator s(42);

  std::array<sim::PeriodicTimer, 16> timers;
  for (int i = 0; i < 16; ++i) {
    timers[static_cast<std::size_t>(i)].start(
        s, sim::SimTime::zero() + sim::microseconds(i * 61),
        sim::milliseconds(1), [] { return true; }, sim::EventPriority::kClock);
  }

  struct Chain {
    sim::Simulator* s = nullptr;
    void arm() {
      s->schedule_after(sim::microseconds(501), [this] { arm(); },
                        sim::EventPriority::kApplication);
    }
  };
  std::array<Chain, 8> chains;
  for (auto& c : chains) {
    c.s = &s;
    c.arm();
  }

  struct Watchdog {
    sim::Simulator* s = nullptr;
    sim::EventId pending{};
    void kick() {
      s->cancel(pending);
      pending = s->schedule_after(sim::milliseconds(10), [] {},
                                  sim::EventPriority::kDiagnosis);
      s->schedule_after(sim::microseconds(733), [this] { kick(); },
                        sim::EventPriority::kDiagnosis);
    }
  };
  std::array<Watchdog, 4> dogs;
  for (auto& d : dogs) {
    d.s = &s;
    d.kick();
  }

  s.run_until(sim::SimTime::zero() + sim::milliseconds(200));  // warm-up
  const auto ev0 = s.events_executed();
  const auto a0 = g_allocs;
  const auto w0 = std::chrono::steady_clock::now();
  s.run_until(sim::SimTime::zero() + sim::seconds(horizon_seconds));
  const auto w1 = std::chrono::steady_clock::now();
  const auto events = s.events_executed() - ev0;
  const auto allocs = g_allocs - a0;
  const double wall = std::chrono::duration<double>(w1 - w0).count();

  SectionResult r;
  r.per_sec = static_cast<double>(events) / wall;
  r.allocs_per_unit =
      static_cast<double>(allocs) / static_cast<double>(events);
  std::printf(
      "scheduling: events=%llu events_per_sec=%.3g allocs_per_event=%.4f\n",
      static_cast<unsigned long long>(events), r.per_sec, r.allocs_per_unit);
  return r;
}

/// Mux spine: two event-triggered vnets, four ports, four sends per round,
/// then the steady-state round path on reused buffers —
/// drain_messages -> pack_into -> unpack_arrival.
SectionResult bench_mux_round(tta::RoundId rounds) {
  vnet::NetworkPlan plan;
  plan.add_vnet({0, "app", 4, 8, vnet::VnetKind::kEventTriggered});
  plan.add_vnet({1, "diag", 4, 8, vnet::VnetKind::kEventTriggered});
  plan.add_port({0, "p0", 0, 0, {1}});
  plan.add_port({1, "p1", 0, 1, {0}});
  plan.add_port({2, "p2", 1, 2, {3}});
  plan.add_port({3, "p3", 1, 3, {2}});
  vnet::Multiplexer mux(plan, 0);
  for (platform::PortId p = 0; p < 4; ++p) mux.host_port(p);

  std::vector<vnet::Message> drained;
  std::vector<std::uint8_t> payload;
  std::vector<vnet::Message> arrived;

  auto round_once = [&](tta::RoundId r) {
    for (platform::PortId p = 0; p < 4; ++p) {
      vnet::Message m;
      m.vnet = plan.port(p).vnet;
      m.port = p;
      m.sender = plan.port(p).owner;
      m.kind = 1;
      m.value = 0.5 * static_cast<double>(r);
      (void)mux.send(m, r);
    }
    mux.drain_messages(r, drained);
    vnet::pack_into(drained, r, payload);
    mux.unpack_arrival(payload, arrived);
    return arrived.size();
  };

  for (tta::RoundId r = 0; r < 512; ++r) round_once(r);  // warm-up
  const auto a0 = g_allocs;
  const auto w0 = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (tta::RoundId r = 512; r < 512 + rounds; ++r) sink += round_once(r);
  const auto w1 = std::chrono::steady_clock::now();
  const auto allocs = g_allocs - a0;
  const double wall = std::chrono::duration<double>(w1 - w0).count();

  SectionResult res;
  res.per_sec = static_cast<double>(rounds) / wall;
  res.allocs_per_unit =
      static_cast<double>(allocs) / static_cast<double>(rounds);
  std::printf(
      "mux_round: rounds=%llu rounds_per_sec=%.3g allocs_per_round=%.2f "
      "sink=%zu\n",
      static_cast<unsigned long long>(rounds), res.per_sec,
      res.allocs_per_unit, sink);
  return res;
}

/// Diag ingest path: the evidence store consuming a steady symptom stream
/// (transport verdicts about a rotating set of senders, plus job-level
/// value/gap symptoms), pruned to a bounded window as a real assessor
/// does. Unlike the event and mux spines this path allocates by design —
/// per-round map/set nodes — so the gate is a *ceiling* per symptom
/// (regression check), not a hard zero.
SectionResult bench_diag_ingest(tta::RoundId rounds) {
  diag::EvidenceStore store({.window_rounds = 2'000});
  sim::Rng rng(7);

  auto round_once = [&](tta::RoundId r) {
    // Four observers judge one misbehaving sender per round.
    const auto subject = static_cast<platform::ComponentId>(r % 8);
    for (platform::ComponentId obs = 0; obs < 4; ++obs) {
      if (obs == subject) continue;
      diag::Symptom s;
      s.type = rng.bernoulli(0.5) ? diag::SymptomType::kSlotCrcError
                                  : diag::SymptomType::kSlotTimingError;
      s.observer = obs;
      s.subject_component = subject;
      s.round = r;
      store.ingest(s);
    }
    // One job-level symptom every few rounds.
    if (r % 4 == 0) {
      diag::Symptom s;
      s.type = diag::SymptomType::kValueOutOfRange;
      s.observer = 1;
      s.subject_component = 1;
      s.subject_job = static_cast<platform::JobId>(r % 6);
      s.round = r;
      s.magnitude = rng.uniform(0.1, 2.0);
      store.ingest(s);
    }
    if (r % 512 == 0) store.prune(r);
  };

  for (tta::RoundId r = 0; r < 4'096; ++r) round_once(r);  // warm-up
  const auto n0 = store.symptoms_ingested();
  const auto a0 = g_allocs;
  const auto w0 = std::chrono::steady_clock::now();
  for (tta::RoundId r = 4'096; r < 4'096 + rounds; ++r) round_once(r);
  const auto w1 = std::chrono::steady_clock::now();
  const auto symptoms = store.symptoms_ingested() - n0;
  const auto allocs = g_allocs - a0;
  const double wall = std::chrono::duration<double>(w1 - w0).count();

  SectionResult res;
  res.per_sec = static_cast<double>(symptoms) / wall;
  res.allocs_per_unit =
      static_cast<double>(allocs) / static_cast<double>(symptoms);
  std::printf(
      "diag_ingest: symptoms=%llu symptoms_per_sec=%.3g "
      "allocs_per_symptom=%.2f\n",
      static_cast<unsigned long long>(symptoms), res.per_sec,
      res.allocs_per_unit);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_kernel_hotpath", argc, argv);

  // `--quick` shrinks both sections for the ctest smoke run.
  bool quick = false;
  for (int i = 1; i < reporter.argc(); ++i) {
    if (std::string_view(reporter.argv()[i]) == "--quick") quick = true;
  }

  const SectionResult sched = bench_scheduling(quick ? 1 : 10);
  const SectionResult mux = bench_mux_round(quick ? 20'000 : 200'000);
  const SectionResult ingest = bench_diag_ingest(quick ? 20'000 : 200'000);

  reporter.set_info("events_per_sec", sched.per_sec);
  reporter.set_info("allocs_per_event", sched.allocs_per_unit);
  reporter.set_info("rounds_per_sec", mux.per_sec);
  reporter.set_info("allocs_per_round", mux.allocs_per_unit);
  reporter.set_info("symptoms_per_sec", ingest.per_sec);
  reporter.set_info("allocs_per_symptom", ingest.allocs_per_unit);
  return reporter.finish();
}
