// E13 — ablations of the diagnostic design choices (DESIGN.md §11).
//
// (a) Observer-credibility bar: the auto-scaled bar (3/4 of peers) vs a
//     fixed bar of 2 under *two concurrent* sender faults — the fixed bar
//     discredits every observer and blinds the sender-side analysis.
// (b) Diagnostic-vnet bandwidth: symptom budget swept down; starved
//     dissemination delays/loses evidence and degrades classification.
// (c) Trust dynamics: drop/recovery swept; fast drops detect earlier but
//     a healthy FRU under ambient noise should not be dragged down.
#include <cstdio>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "scenario/fig10.hpp"

using namespace decos;

namespace {

sim::SimTime ms(std::int64_t v) { return sim::SimTime{0} + sim::milliseconds(v); }

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_ablation_diag", argc, argv);
  std::printf("== E13 / ablations of the diagnostic design choices ==\n\n");

  // --- (a) credibility bar under concurrent faults ---------------------------
  std::printf("(a) observer-credibility bar, two concurrent sender faults "
              "(dead component 3 + wearing component 1):\n");
  for (const std::uint32_t bar : {2u, 0u}) {  // 0 = auto
    scenario::Fig10Options opts;
    opts.seed = 1301;
    opts.assessor_host = 4;  // not one of the components we break
    opts.assessor.classifier.sender_spread = bar;
    scenario::Fig10System rig(opts);
    rig.injector().inject_permanent_failure(3, ms(300));
    rig.injector().inject_wearout(1, ms(600), sim::milliseconds(500), 0.7,
                                  sim::milliseconds(10));
    rig.run(sim::seconds(5));
    const auto d3 = rig.diag().assessor().diagnose_component(3);
    const auto d1 = rig.diag().assessor().diagnose_component(1);
    std::printf("  bar=%-4s -> comp3: %-22s comp1: %-22s\n",
                bar == 0 ? "auto" : "2", fault::to_string(d3.cls),
                fault::to_string(d1.cls));
    rig.diag().record_detection_latency(rig.injector());
    reporter.absorb(rig.sim().metrics());
  }
  std::printf("  expected: auto bar diagnoses both internal; the fixed bar "
              "of 2 discredits every observer and misses both\n\n");

  // --- (b) diagnostic vnet bandwidth -----------------------------------------
  std::printf("(b) diagnostic-vnet budget (msgs/round/node) vs diagnosis of "
              "a wearing component:\n");
  for (const std::uint16_t budget : {16, 4, 1, 0}) {
    scenario::Fig10Options opts;
    opts.seed = 1302;
    scenario::Fig10System rig(opts);
    // Shrink the diagnostic vnet budget after construction (vnet 0).
    rig.system().plan().mutable_vnet(platform::kDiagnosticVnet)
        .msgs_per_round_per_node = budget;
    rig.injector().inject_wearout(1, ms(300), sim::milliseconds(600), 0.7,
                                  sim::milliseconds(10));
    rig.run(sim::seconds(5));
    const auto d = rig.diag().assessor().diagnose_component(1);
    std::printf("  budget=%-3u -> %-22s (%llu symptoms reached the "
                "assessor)\n",
                budget, fault::to_string(d.cls),
                static_cast<unsigned long long>(
                    rig.diag().assessor().symptoms_processed()));
    reporter.absorb(rig.sim().metrics());
  }
  std::printf("  expected: classification robust down to small budgets "
              "(symptoms queue and arrive late), degrading only when the "
              "budget starves the agents entirely\n\n");

  // --- (c) trust dynamics -------------------------------------------------------
  std::printf("(c) trust drop per symptomatic round vs detection time and "
              "healthy-FRU stability (ambient SEU noise present):\n");
  analysis::Table t({"drop", "rounds to trust<0.5 (faulty)",
                     "final trust (healthy comp 0)"});
  for (const double drop : {0.005, 0.02, 0.08}) {
    scenario::Fig10Options opts;
    opts.seed = 1303;
    opts.assessor.trust.drop = drop;
    scenario::Fig10System rig(opts);
    rig.injector().inject_wearout(2, ms(300), sim::milliseconds(500), 0.75,
                                  sim::milliseconds(10));
    for (int i = 0; i < 6; ++i) {
      rig.injector().inject_seu(0, ms(400 + i * 700));  // ambient noise
    }
    rig.run(sim::seconds(6));
    const auto& traj = rig.diag().assessor().component_trajectory(2);
    tta::RoundId crossed = 0;
    for (const auto& s : traj) {
      if (s.trust < 0.5) {
        crossed = s.round;
        break;
      }
    }
    t.add_row({analysis::Table::num(drop, 3),
               crossed ? std::to_string(crossed) : "never",
               analysis::Table::num(
                   rig.diag().assessor().component_trust(0), 2)});
    rig.diag().record_detection_latency(rig.injector());
    reporter.absorb(rig.sim().metrics());
  }
  std::printf("%s", t.render().c_str());
  std::printf("  expected: larger drops cross the report threshold sooner; "
              "ambient transients must not push the healthy component's "
              "trust to the floor\n");
  return reporter.finish();
}
