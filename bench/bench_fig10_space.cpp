// E4 — Fig. 10: judgement along time, value and space.
//
// Scenario (a): a job-inherent fault inside non-SC DAS A — error
// containment must confine the damage to DAS A and the diagnosis must
// blame the job, not the component.
// Scenario (b): a component-internal fault on component 1, which hosts
// jobs of DASs S, A and C — correlated failures across DAS borders must
// let the diagnosis blame the component (and the TMR vote of DAS S must
// mask replica S2's corruption).
// Ablation: the same scenarios judged *without* the space dimension
// (spatial radius 0 and sibling correlation off is approximated by a
// classifier that never sees the layout) — shows why space is load-
// bearing for the massive-transient pattern.
#include <cstdio>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "scenario/fig10.hpp"

using namespace decos;

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig10_space", argc, argv);
  std::printf("== E4 / Fig. 10: spatial judgement & error containment ==\n\n");

  analysis::Table t({"scenario", "FRU judged", "diagnosis", "action",
                     "containment check"});

  // (a) job-inherent fault in DAS A.
  {
    scenario::Fig10System rig({.seed = 401});
    rig.injector().inject_heisenbug(rig.a(0), sim::SimTime{0} + sim::milliseconds(400),
                                    0.08);
    rig.run(sim::seconds(4));
    auto& assessor = rig.diag().assessor();
    const auto dj = assessor.diagnose_job(rig.a(0));
    // Containment: every FRU outside DAS A clean.
    bool contained = true;
    for (platform::JobId j : rig.app_jobs()) {
      if (j == rig.a(0)) continue;
      if (assessor.diagnose_job(j).cls != fault::FaultClass::kNone) {
        contained = false;
      }
    }
    const auto host = rig.system().job(rig.a(0)).host();
    if (assessor.diagnose_component(host).cls != fault::FaultClass::kNone) {
      contained = false;
    }
    t.add_row({"(a) Heisenbug in job A1", "job A1", fault::to_string(dj.cls),
               fault::to_string(dj.action()),
               contained ? "other DASs clean: yes" : "CONTAINMENT VIOLATED"});
    rig.diag().record_detection_latency(rig.injector());
    reporter.absorb(rig.sim().metrics());
    reporter.set_info("a_contained", contained ? 1.0 : 0.0);
  }

  // (b) component-internal fault on the shared component 1.
  {
    scenario::Fig10System rig({.seed = 402});
    rig.injector().inject_wearout(1, sim::SimTime{0} + sim::milliseconds(400),
                                  sim::milliseconds(500), 0.7,
                                  sim::milliseconds(10));
    rig.run(sim::seconds(5));
    auto& assessor = rig.diag().assessor();
    const auto dc = assessor.diagnose_component(1);
    // Correlation: jobs of different DASs on component 1 all implicated,
    // resolved to the component.
    std::size_t resolved = 0, hosted = 0;
    for (platform::JobId j : rig.app_jobs()) {
      if (rig.system().job(j).host() != 1) continue;
      ++hosted;
      const auto dj = assessor.diagnose_job(j);
      if (dj.cls == fault::FaultClass::kComponentInternal ||
          dj.cls == fault::FaultClass::kNone) {
        ++resolved;
      }
    }
    char buf[80];
    std::snprintf(buf, sizeof buf, "%zu/%zu hosted jobs -> component", resolved,
                  hosted);
    t.add_row({"(b) wearout in component 1", "component 1",
               fault::to_string(dc.cls), fault::to_string(dc.action()), buf});

    // TMR masking: replica S2 lives on component 1.
    std::printf("TMR (DAS S): votes=%llu disagreements=%llu vote-failures=%llu "
                "-> single component fault masked: %s\n\n",
                static_cast<unsigned long long>(rig.tmr().votes),
                static_cast<unsigned long long>(rig.tmr().disagreements),
                static_cast<unsigned long long>(rig.tmr().vote_failures),
                rig.tmr().vote_failures == 0 ? "yes" : "NO");
    rig.diag().record_detection_latency(rig.injector());
    reporter.absorb(rig.sim().metrics());
    reporter.set_info("b_vote_failures",
                      static_cast<double>(rig.tmr().vote_failures));
  }

  std::printf("%s\n", t.render().c_str());

  // --- ablation: EMI with vs without the space dimension --------------------
  std::printf("-- ablation: massive transient judged with vs without the "
              "space dimension --\n");
  for (const bool spatial : {true, false}) {
    scenario::Fig10Options opts;
    opts.seed = 403;
    opts.assessor.classifier.spatial_radius = spatial ? 1.6 : 0.0;
    scenario::Fig10System rig(opts);
    rig.injector().inject_emi_burst(1.0, 1.1,
                                    sim::SimTime{0} + sim::milliseconds(600),
                                    sim::milliseconds(12));
    // A second burst later (the vehicle passes the same interference zone).
    rig.injector().inject_emi_burst(1.0, 1.1,
                                    sim::SimTime{0} + sim::milliseconds(1400),
                                    sim::milliseconds(12));
    rig.injector().inject_emi_burst(1.0, 1.1,
                                    sim::SimTime{0} + sim::milliseconds(2600),
                                    sim::milliseconds(12));
    rig.run(sim::seconds(4));
    const auto d = rig.diag().assessor().diagnose_component(1);
    std::printf("  space %-3s -> component 1 judged %-22s (%s)\n",
                spatial ? "ON" : "OFF", fault::to_string(d.cls), d.rationale.c_str());
    reporter.absorb(rig.sim().metrics());
  }
  std::printf("expected: with space ON the repeated EMI stays external "
              "(no action); with space OFF it degrades toward a connector "
              "suspicion -> an unnecessary garage inspection\n");
  return reporter.finish();
}
