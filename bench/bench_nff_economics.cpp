// E6 — Section I: No-Fault-Found economics.
//
// Two-stage pipeline:
//   1. Measure the diagnostic subsystem's per-class classification
//      behaviour on the simulated cluster (a small calibration sweep).
//   2. Monte-Carlo a fleet's worth of garage visits: true classes drawn
//      from field-data-shaped priors (transients dominate; connectors
//      >30% of electrical failures per Swingler; permanents rare at
//      100 FIT vs 100 000 FIT transients), diagnoses drawn from the
//      measured confusion behaviour, and both maintenance strategies
//      scored: naive "swap the box" vs the model-guided Fig. 11 actions.
// Prints NFF ratios, wasted dollars at the paper's 800 $/removal, and the
// fleet-scale annual saving.
#include <cstdio>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "analysis/confusion.hpp"
#include "analysis/nff.hpp"
#include "analysis/table.hpp"
#include "exec/runner.hpp"
#include "obs/bench_io.hpp"
#include "reliability/fit.hpp"
#include "scenario/fig10.hpp"
#include "sim/rng.hpp"

using namespace decos;

namespace {

sim::SimTime ms(std::int64_t v) { return sim::SimTime{0} + sim::milliseconds(v); }

/// Calibration: how the diagnostic DAS classifies each true class. Each
/// (seed, probe) pair is an independent rig, so the sweep runs on the
/// experiment engine and folds in submission order — the calibration map
/// is identical for every --jobs value.
std::map<fault::FaultClass, std::vector<fault::FaultClass>> calibrate(
    const std::vector<std::uint64_t>& seeds, unsigned jobs) {
  struct Probe {
    fault::FaultClass truth;
    std::uint64_t seed_offset;
    std::function<fault::FaultClass(std::uint64_t)> run;
  };
  const std::vector<Probe> probes = {
      {fault::FaultClass::kComponentExternal, 0,
       [](std::uint64_t seed) {
         scenario::Fig10System rig({.seed = seed});
         rig.injector().inject_emi_burst(1.0, 1.1, ms(600),
                                         sim::milliseconds(12));
         rig.injector().inject_emi_burst(1.0, 1.1, ms(1600),
                                         sim::milliseconds(12));
         rig.run(sim::seconds(3));
         return rig.diag().assessor().diagnose_component(1).cls;
       }},
      {fault::FaultClass::kComponentBorderline, 10,
       [](std::uint64_t seed) {
         scenario::Fig10System rig({.seed = seed});
         rig.injector().inject_connector_fault(3, ms(300),
                                               sim::milliseconds(250),
                                               sim::milliseconds(10), 0.8);
         rig.run(sim::seconds(5));
         return rig.diag().assessor().diagnose_component(3).cls;
       }},
      {fault::FaultClass::kComponentInternal, 20,
       [](std::uint64_t seed) {
         scenario::Fig10System rig({.seed = seed});
         rig.injector().inject_wearout(1, ms(300), sim::milliseconds(600), 0.7,
                                       sim::milliseconds(10));
         rig.run(sim::seconds(5));
         return rig.diag().assessor().diagnose_component(1).cls;
       }},
      {fault::FaultClass::kJobBorderline, 30,
       [](std::uint64_t seed) {
         scenario::Fig10System rig({.seed = seed});
         rig.injector().inject_config_fault(2, ms(300), 0, 2);
         rig.run(sim::seconds(3));
         return rig.diag().assessor().diagnose_job(
             *rig.injector().ledger().front().job).cls;
       }},
      {fault::FaultClass::kJobInherentSoftware, 40,
       [](std::uint64_t seed) {
         scenario::Fig10System rig({.seed = seed});
         rig.injector().inject_heisenbug(rig.a(1), ms(300), 0.08);
         rig.run(sim::seconds(4));
         return rig.diag().assessor().diagnose_job(rig.a(1)).cls;
       }},
      {fault::FaultClass::kJobInherentTransducer, 50,
       [](std::uint64_t seed) {
         scenario::Fig10System rig({.seed = seed});
         rig.injector().inject_sensor_fault(rig.c(0), 0,
                                            platform::SensorFaultMode::kDrift,
                                            ms(300));
         rig.run(sim::seconds(10));
         return rig.diag().assessor().diagnose_job(rig.c(0)).cls;
       }},
  };

  using Sample = std::pair<fault::FaultClass, fault::FaultClass>;
  std::vector<std::function<Sample()>> runs;
  runs.reserve(seeds.size() * probes.size());
  for (const std::uint64_t seed : seeds) {
    for (const Probe& probe : probes) {
      runs.push_back([&probe, seed]() -> Sample {
        return {probe.truth, probe.run(seed + probe.seed_offset)};
      });
    }
  }

  std::map<fault::FaultClass, std::vector<fault::FaultClass>> out;
  exec::ExperimentRunner runner(jobs);
  runner.run_and_merge<Sample>(
      std::move(runs), [&](std::size_t, const Sample& sample) {
        out[sample.first].push_back(sample.second);
      });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_nff_economics", argc, argv);
  std::printf("== E6 / Section I: NFF economics, naive vs model-guided ==\n\n");

  std::printf("calibrating classifier behaviour on the simulated cluster...\n");
  const auto seeds = reporter.seeds_or({601, 602, 603});
  const auto calibration = calibrate(seeds, reporter.jobs());
  analysis::ConfusionMatrix cal_cm;
  for (const auto& [truth, diagnoses] : calibration) {
    for (auto d : diagnoses) cal_cm.add(truth, d);
  }
  std::printf("%s\n", cal_cm.to_table().c_str());

  // Field-data-shaped prior over the true class behind a garage visit.
  // Transient external disturbances dominate symptom streams (the soft-
  // error trend, Constantinescu); connectors carry >30% of electrical
  // failures (Swingler/Galler); genuinely internal hardware is rare
  // (100 FIT permanent vs 100 000 FIT transient = 0.1%), software issues
  // grow with integration level.
  struct Prior {
    fault::FaultClass cls;
    double weight;
  };
  const std::vector<Prior> priors = {
      {fault::FaultClass::kComponentExternal, 0.38},
      {fault::FaultClass::kComponentBorderline, 0.31},
      {fault::FaultClass::kComponentInternal, 0.06},
      {fault::FaultClass::kJobBorderline, 0.05},
      {fault::FaultClass::kJobInherentSoftware, 0.14},
      {fault::FaultClass::kJobInherentTransducer, 0.06},
  };

  const std::size_t visits = 100'000;
  sim::Rng rng(606);
  analysis::NffAccounting naive, guided;
  for (std::size_t v = 0; v < visits; ++v) {
    // Draw the true class.
    double u = rng.uniform();
    fault::FaultClass truth = priors.back().cls;
    for (const auto& p : priors) {
      if (u < p.weight) {
        truth = p.cls;
        break;
      }
      u -= p.weight;
    }
    // Draw the diagnosis from the measured behaviour for that class.
    const auto& options = calibration.at(truth);
    const auto diagnosed = options[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(options.size()) - 1))];
    naive.record(truth, decide(analysis::Strategy::kNaiveReplace, diagnosed));
    guided.record(truth, decide(analysis::Strategy::kModelGuided, diagnosed));
  }

  std::printf("%s\n", naive.summary("naive").c_str());
  std::printf("%s\n\n", guided.summary("model-guided").c_str());

  const double saving_per_visit =
      (naive.wasted_cost() - guided.wasted_cost()) / static_cast<double>(visits);
  // Paper framing: ~375k removals/yr at 800 $ = 300 M$/yr in avionics.
  const double annual_removals = 300e6 / reliability::paper::kCostPerLruRemoval;
  std::printf("saving: $%.2f per garage visit; scaled to the paper's "
              "~%.0fk annual avionics removals: $%.1fM per year\n",
              saving_per_visit, annual_removals / 1000.0,
              saving_per_visit * annual_removals / 1e6);
  std::printf("expected shape: model-guided NFF ratio a small fraction of "
              "the naive ratio; savings dominated by external + connector "
              "classes the naive strategy pulls boxes for\n");

  obs::Registry metrics;
  for (const auto* acct : {&naive, &guided}) {
    const std::string label = acct == &naive ? "strategy=naive"
                                             : "strategy=model_guided";
    metrics.counter("nff.visits", label).inc(acct->visits());
    metrics.counter("nff.removals", label).inc(acct->removals());
    metrics.counter("nff.nff_removals", label).inc(acct->nff_removals());
    metrics.counter("nff.faults_eliminated", label).inc(acct->faults_eliminated());
  }
  reporter.absorb(metrics);
  reporter.set_info("naive_nff_ratio", naive.nff_ratio());
  reporter.set_info("guided_nff_ratio", guided.nff_ratio());
  reporter.set_info("saving_per_visit_usd", saving_per_visit);
  return reporter.finish();
}
