// E19 — provenance tracing cost and journey completeness.
//
// Three questions, all measured with the counting operator-new hook of
// E18:
//   1. What does a *disabled* tracer cost on a hot path that calls the
//      instrumented API every round? (target: zero throughput cost, zero
//      allocations — the disabled mutators are a single branch)
//   2. What does an *enabled* tracer cost on the same path, and on the
//      real instrumented diagnostic pipeline (Fig. 10 rig with an
//      intermittent fault)? (target: <= 5 % throughput)
//   3. Does every injected fault's journey terminate? A provenance-armed
//      chaos campaign (--seeds/--jobs honoured) is audited for orphaned
//      journeys; --trace <file> dumps the merged NDJSON journey record.
//
// Like E18 the numbers are *reported* (stdout + --json), not asserted —
// sanitizer builds interpose operator new and a loaded CI box skews any
// hard wall-clock bound. The tier-1 smoke run only checks the bench runs
// and exports its keys.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string_view>

#include "obs/bench_io.hpp"
#include "obs/provenance.hpp"
#include "scenario/chaos.hpp"
#include "scenario/fig10.hpp"
#include "sim/simulator.hpp"
#include "vnet/message.hpp"
#include "vnet/multiplexer.hpp"
#include "vnet/network_plan.hpp"

namespace {
unsigned long long g_allocs = 0;
}

// Counting global allocator hooks: every variant funnels through malloc so
// the count covers array, nothrow and over-aligned forms alike.
void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_allocs;
  const auto align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace decos;

enum class TraceMode { kNone, kDisabled, kEnabled };

struct SectionResult {
  double per_sec = 0.0;
  double allocs_per_unit = 0.0;
};

/// The E18 mux spine (send -> drain -> pack -> unpack on reused buffers)
/// with one instrumented-API call per round — the density a continuously
/// manifesting fault produces. kNone runs the bare spine, the other modes
/// add tracer.event() against a disabled/enabled tracer.
SectionResult bench_mux_with_tracer(tta::RoundId rounds, TraceMode mode) {
  vnet::NetworkPlan plan;
  plan.add_vnet({0, "app", 4, 8, vnet::VnetKind::kEventTriggered});
  plan.add_vnet({1, "diag", 4, 8, vnet::VnetKind::kEventTriggered});
  plan.add_port({0, "p0", 0, 0, {1}});
  plan.add_port({1, "p1", 0, 1, {0}});
  plan.add_port({2, "p2", 1, 2, {3}});
  plan.add_port({3, "p3", 1, 3, {2}});
  vnet::Multiplexer mux(plan, 0);
  for (platform::PortId p = 0; p < 4; ++p) mux.host_port(p);

  obs::ProvenanceTracer tracer;
  obs::ProvenanceId journey = obs::kNoJourney;
  if (mode == TraceMode::kEnabled) {
    tracer.enable(1 << 12);
    journey = tracer.begin_journey("component.1", "bench", "mux spine", 0);
  }

  std::vector<vnet::Message> drained;
  std::vector<std::uint8_t> payload;
  std::vector<vnet::Message> arrived;

  auto round_once = [&](tta::RoundId r) {
    for (platform::PortId p = 0; p < 4; ++p) {
      vnet::Message m;
      m.vnet = plan.port(p).vnet;
      m.port = p;
      m.sender = plan.port(p).owner;
      m.kind = 1;
      m.value = 0.5 * static_cast<double>(r);
      (void)mux.send(m, r);
    }
    mux.drain_messages(r, drained);
    vnet::pack_into(drained, r, payload);
    mux.unpack_arrival(payload, arrived);
    if (mode != TraceMode::kNone) {
      tracer.event(journey, obs::ProvStage::kSymptom, "agent.1", "slot-crc",
                   r);
    }
    return arrived.size();
  };

  for (tta::RoundId r = 0; r < 512; ++r) round_once(r);  // warm-up
  const auto a0 = g_allocs;
  const auto w0 = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (tta::RoundId r = 512; r < 512 + rounds; ++r) sink += round_once(r);
  const auto w1 = std::chrono::steady_clock::now();
  const auto allocs = g_allocs - a0;
  const double wall = std::chrono::duration<double>(w1 - w0).count();

  const char* label = mode == TraceMode::kNone       ? "bare"
                      : mode == TraceMode::kDisabled ? "disabled"
                                                     : "enabled";
  SectionResult res;
  res.per_sec = static_cast<double>(rounds) / wall;
  res.allocs_per_unit =
      static_cast<double>(allocs) / static_cast<double>(rounds);
  std::printf(
      "mux_round[%s]: rounds=%llu rounds_per_sec=%.3g allocs_per_round=%.2f "
      "sink=%zu\n",
      label, static_cast<unsigned long long>(rounds), res.per_sec,
      res.allocs_per_unit, sink);
  return res;
}

/// Wall-clock of the real instrumented pipeline: a Fig. 10 rig carrying a
/// wearout (accelerating intermittent) plus a heisenbug, run to `horizon`
/// with provenance off/on. Same seed, same event population — the delta
/// is the tracer.
double bench_rig(bool provenance, sim::Duration horizon) {
  scenario::Fig10Options opts;
  opts.seed = 7;
  opts.provenance = provenance;
  scenario::Fig10System rig(opts);
  rig.injector().inject_wearout(1, sim::SimTime::zero() + sim::milliseconds(300),
                                sim::milliseconds(80));
  rig.injector().inject_heisenbug(rig.a(0),
                                  sim::SimTime::zero() + sim::milliseconds(400),
                                  0.2);
  const auto w0 = std::chrono::steady_clock::now();
  rig.run(horizon);
  const auto w1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(w1 - w0).count();
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_provenance", argc, argv);

  bool quick = false;
  for (int i = 1; i < reporter.argc(); ++i) {
    if (std::string_view(reporter.argv()[i]) == "--quick") quick = true;
  }
  const tta::RoundId rounds = quick ? 20'000 : 200'000;

  // 1+2a. Instrumented-API cost on the E18 mux spine.
  const SectionResult bare = bench_mux_with_tracer(rounds, TraceMode::kNone);
  const SectionResult off = bench_mux_with_tracer(rounds, TraceMode::kDisabled);
  const SectionResult on = bench_mux_with_tracer(rounds, TraceMode::kEnabled);
  const double off_overhead = 100.0 * (bare.per_sec / off.per_sec - 1.0);
  const double on_overhead = 100.0 * (bare.per_sec / on.per_sec - 1.0);
  std::printf("trace overhead: disabled=%.2f%% enabled=%.2f%%\n", off_overhead,
              on_overhead);

  // 2b. End-to-end pipeline cost, provenance off vs on.
  const sim::Duration horizon = quick ? sim::seconds(1) : sim::seconds(3);
  const double rig_off = bench_rig(false, horizon);
  const double rig_on = bench_rig(true, horizon);
  const double rig_overhead = 100.0 * (rig_on / rig_off - 1.0);
  std::printf("fig10 rig: off=%.3fs on=%.3fs overhead=%.2f%%\n", rig_off,
              rig_on, rig_overhead);

  // 3. Journey-completeness audit over a provenance-armed chaos campaign.
  const auto seeds =
      reporter.seeds_or(quick ? std::vector<std::uint64_t>{1}
                              : std::vector<std::uint64_t>{1, 2, 3});
  scenario::ChaosOptions chaos;
  chaos.provenance = true;
  auto archetypes = scenario::standard_archetypes();
  if (quick) archetypes.resize(3);
  scenario::Fig10Options base;
  base.provenance_span_cap = reporter.trace_cap();
  const scenario::ChaosCampaignResult campaign = scenario::run_chaos_campaign(
      archetypes, seeds, chaos, base, reporter.jobs());
  std::printf(
      "journey audit: journeys=%llu classified=%llu orphans=%llu "
      "chaos_journeys=%llu spans=%llu dropped=%llu accuracy=%.3f\n",
      static_cast<unsigned long long>(campaign.journeys),
      static_cast<unsigned long long>(campaign.journeys_classified),
      static_cast<unsigned long long>(campaign.orphaned_journeys),
      static_cast<unsigned long long>(campaign.chaos_journeys),
      static_cast<unsigned long long>(campaign.spans),
      static_cast<unsigned long long>(campaign.spans_dropped),
      campaign.accuracy());
  if (reporter.trace_requested()) {
    reporter.set_trace_payload(campaign.provenance_ndjson);
  }

  reporter.absorb(campaign.metrics);
  reporter.set_info("mux_rounds_per_sec_bare", bare.per_sec);
  reporter.set_info("mux_rounds_per_sec_disabled", off.per_sec);
  reporter.set_info("mux_rounds_per_sec_enabled", on.per_sec);
  reporter.set_info("allocs_per_round_bare", bare.allocs_per_unit);
  reporter.set_info("allocs_per_round_disabled", off.allocs_per_unit);
  reporter.set_info("allocs_per_round_enabled", on.allocs_per_unit);
  reporter.set_info("trace_overhead_disabled_pct", off_overhead);
  reporter.set_info("trace_overhead_enabled_pct", on_overhead);
  reporter.set_info("rig_overhead_pct", rig_overhead);
  reporter.set_info("journeys", static_cast<double>(campaign.journeys));
  reporter.set_info("journeys_classified",
                    static_cast<double>(campaign.journeys_classified));
  reporter.set_info("orphaned_journeys",
                    static_cast<double>(campaign.orphaned_journeys));
  reporter.set_info("chaos_journeys",
                    static_cast<double>(campaign.chaos_journeys));
  reporter.set_info("spans", static_cast<double>(campaign.spans));
  reporter.set_info("spans_dropped",
                    static_cast<double>(campaign.spans_dropped));
  reporter.set_info("campaign_accuracy", campaign.accuracy());
  return reporter.finish();
}
