// E1 — Fig. 7: the bathtub curve.
//
// Regenerates the reliability curve of electronic components the paper
// uses to motivate wearout monitoring: infant mortality (decreasing
// hazard), useful life (constant floor calibrated to the paper's
// 50 failures / 1e6 ECUs / year from Pauli & Meyna), and wearout
// (increasing hazard). Prints the analytic hazard h(t) and an empirical
// rate measured over a sampled population, per age bucket.
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "reliability/hazard.hpp"
#include "sim/rng.hpp"

using namespace decos;

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig7_bathtub", argc, argv);
  std::printf("== E1 / Fig. 7: bathtub curve of ECU reliability ==\n\n");

  const auto params = reliability::default_ecu_bathtub();
  const reliability::BathtubHazard tub(params);

  // Sample a population of devices; count failures per age bucket.
  const std::size_t population = 200'000;
  const double horizon_hours = 180'000.0;  // ~20 years
  const std::size_t buckets = 18;
  const double bucket_hours = horizon_hours / static_cast<double>(buckets);

  std::vector<std::uint64_t> failures(buckets, 0);
  std::vector<double> exposure_hours(buckets, 0.0);
  sim::Rng rng(2026);
  for (std::size_t d = 0; d < population; ++d) {
    const double ttf = tub.sample_ttf(rng, sim::Duration{0}).hours();
    for (std::size_t b = 0; b < buckets; ++b) {
      const double lo = static_cast<double>(b) * bucket_hours;
      const double hi = lo + bucket_hours;
      if (ttf >= hi) {
        exposure_hours[b] += bucket_hours;
      } else if (ttf > lo) {
        exposure_hours[b] += ttf - lo;
        ++failures[b];
        break;
      } else {
        break;
      }
    }
  }

  analysis::Table t({"age [h]", "age [yr]", "h(t) analytic [FIT]",
                     "empirical [FIT]", "phase"});
  for (std::size_t b = 0; b < buckets; ++b) {
    const double mid = (static_cast<double>(b) + 0.5) * bucket_hours;
    const double analytic_fit =
        tub.hazard_per_hour(sim::hours(static_cast<std::int64_t>(mid))) * 1e9;
    const double empirical_fit =
        exposure_hours[b] > 0
            ? static_cast<double>(failures[b]) / exposure_hours[b] * 1e9
            : 0.0;
    const char* phase = b == 0                  ? "infant mortality"
                        : mid > 110'000.0       ? "wearout"
                                                : "useful life";
    t.add_row({analysis::Table::num(mid, 0), analysis::Table::num(mid / 8760.0, 1),
               analysis::Table::num(analytic_fit, 1),
               analysis::Table::num(empirical_fit, 1), phase});
  }
  std::printf("%s\n", t.render().c_str());

  const double floor_fit = params.useful_life_rate.fit();
  std::printf("useful-life floor: %.2f FIT = %.1f failures / 1e6 units / year "
              "(paper: ~50)\n",
              floor_fit, floor_fit * 1e-9 * 8760.0 * 1e6);
  std::printf("expected shape: high infant rate -> flat floor -> rising "
              "wearout tail\n");

  // No simulator here — export the sampled time-to-failure distribution
  // directly (hours) next to the headline floor.
  obs::Registry metrics;
  obs::Histogram ttf_hours = metrics.histogram("reliability.sampled_ttf_hours");
  sim::Rng export_rng(2027);
  for (int i = 0; i < 20'000; ++i) {
    ttf_hours.record(static_cast<std::int64_t>(
        tub.sample_ttf(export_rng, sim::Duration{0}).hours()));
  }
  reporter.absorb(metrics);
  reporter.set_info("useful_life_floor_fit", floor_fit);
  reporter.set_info("population", static_cast<double>(population));
  return reporter.finish();
}
