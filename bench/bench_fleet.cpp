// E23 — fleet-scale simulation: tens of thousands of vehicles through the
// sharded event kernel and the campaign driver, with a counting
// operator-new hook proving the steady-state stepping path allocation-free.
//
// Section 1 (steady) runs one FleetSimulator batch twice on the same
// kernel: the first pass grows every per-shard slab, heap and arena to its
// high-water mark, the second pass is the measured window — with the
// sparse module cells pre-reserved it must allocate *nothing*, which is
// also the proof that no event crosses shards (a cross-shard push would
// grow a cold slab). Section 2 runs the full FleetCampaign — batching,
// worker pool, ordered merge — and self-checks the paper's shapes: the
// naive strategy's NFF ratio strictly above the model-guided one
// (Fig. 12) and the failure-rate-vs-age histogram recovering the bathtub
// (Fig. 7: infant mortality and wearout both well above the useful-life
// valley). Shape violations exit nonzero, so the fleet_smoke ctest and
// the CI perf gate catch them without comparing machine-dependent floats.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string_view>

#include "analysis/fleet.hpp"
#include "fleet/campaign.hpp"
#include "fleet/fleet_sim.hpp"
#include "obs/bench_io.hpp"

namespace {
unsigned long long g_allocs = 0;
}

// Counting global allocator hooks: every variant funnels through malloc so
// the count covers array, nothrow and over-aligned forms alike.
void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_allocs;
  const auto align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// Sanitizer builds interpose the allocator, which skews the counting hook;
// the steady-state hard zero is only asserted on plain builds (the CI
// perf gate), sanitized runs keep it report-only like E18.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DECOS_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DECOS_BENCH_SANITIZED 1
#endif
#endif

namespace {

using namespace decos;

#if defined(DECOS_BENCH_SANITIZED)
constexpr bool kAllocGateArmed = false;
#else
constexpr bool kAllocGateArmed = true;
#endif

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAIL: %s\n", what);
    ++g_failures;
  }
}

/// Section 1: steady-state stepping. Warm-up pass reaches every high-water
/// mark; the measured pass must be allocation-free.
void bench_steady(obs::BenchReporter& reporter, std::uint32_t vehicles,
                  std::uint32_t shards) {
  fleet::FleetBatchConfig cfg;
  cfg.vehicles = vehicles;
  cfg.epochs = 4;
  cfg.shards = shards;
  cfg.seed = 2026;
  fleet::FleetSimulator sim(cfg);

  analysis::FleetBatchCounts tally(cfg.grid);
  // Sparse software-failure cells are the only unbounded tally; reserve
  // past any plausible two-pass count so the window sees no vector growth.
  tally.module_failures.reserve(2 * vehicles);

  sim.run_into(tally);  // warm-up: slabs, heaps, arenas, tallies at HWM

  const auto a0 = g_allocs;
  const auto w0 = std::chrono::steady_clock::now();
  sim.run_into(tally);
  const auto w1 = std::chrono::steady_clock::now();
  const auto allocs = g_allocs - a0;
  const double wall = std::chrono::duration<double>(w1 - w0).count();
  const auto epochs = static_cast<double>(vehicles) * 4.0;

  std::printf(
      "steady: vehicles=%u shards=%u vehicle_epochs_per_sec=%.3g "
      "steady_allocs=%llu\n",
      vehicles, shards, epochs / wall,
      static_cast<unsigned long long>(allocs));
  reporter.set_info("vehicle_epochs_per_sec", epochs / wall);
  reporter.set_info("steady_allocs", static_cast<double>(allocs));
  check(allocs == 0 || !kAllocGateArmed,
        "steady-state fleet stepping allocated");
}

/// Section 2: the campaign driver end to end, plus the paper's shapes.
void bench_campaign(obs::BenchReporter& reporter, std::uint32_t vehicles,
                    std::uint32_t shards, unsigned jobs) {
  fleet::FleetCampaignConfig cfg;
  cfg.vehicles = vehicles;
  cfg.batch_size = std::max<std::uint32_t>(1, vehicles / 10);
  cfg.epochs = 12;
  cfg.shards = shards;
  cfg.seed = 2026;
  cfg.jobs = jobs;

  const auto w0 = std::chrono::steady_clock::now();
  const analysis::FleetAggregate agg = fleet::FleetCampaign(cfg).run();
  const auto w1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(w1 - w0).count();

  std::printf("campaign: %s", agg.summary().c_str());
  std::printf("campaign: vehicles_per_sec=%.3g (jobs=%u)\n",
              static_cast<double>(vehicles) / wall, jobs);
  reporter.set_info("campaign_vehicles",
                    static_cast<double>(agg.vehicles()));
  reporter.set_info("campaign_vehicles_per_sec",
                    static_cast<double>(vehicles) / wall);
  reporter.set_info("nff_naive", agg.naive().nff_ratio());
  reporter.set_info("nff_guided", agg.guided().nff_ratio());
  reporter.set_info("spares_total", static_cast<double>(agg.total_spares()));
  reporter.set_info("sw_head_share", agg.modules().head_share(0.2));

  // Fig. 12 shape: symptom-driven replacement wastes strictly more.
  check(agg.naive().nff > agg.guided().nff,
        "naive NFF count not above guided");
  check(agg.naive().nff_ratio() > agg.guided().nff_ratio() + 0.05,
        "naive NFF ratio not clearly above guided");

  // Fig. 7 shape: infant mortality and wearout both rise out of the
  // useful-life valley of the failure-rate-vs-age histogram.
  double valley = 1e300;
  for (std::uint32_t b = 4; b < 16; ++b) {
    valley = std::min(valley, agg.failure_rate_per_mh(b));
  }
  double old_peak = 0.0;
  for (std::uint32_t b = 18; b < agg.grid().age_bins; ++b) {
    old_peak = std::max(old_peak, agg.failure_rate_per_mh(b));
  }
  const double infant = agg.failure_rate_per_mh(0);
  std::printf(
      "campaign: bathtub infant=%.1f valley=%.1f wearout_peak=%.1f "
      "(failures per 1e6 vehicle-hours)\n",
      infant, valley, old_peak);
  reporter.set_info("infant_over_valley", valley > 0 ? infant / valley : 0.0);
  reporter.set_info("wearout_over_valley",
                    valley > 0 ? old_peak / valley : 0.0);
  check(infant > 2.0 * valley, "no infant-mortality spike in age histogram");
  check(old_peak > 2.0 * valley, "no wearout rise in age histogram");

  // 20-80 shape: the head modules carry most software failures.
  check(agg.modules().head_share(0.2) > 0.5,
        "software failures not concentrated in head modules");
}

/// Section 3: determinism oracle — a small campaign must merge to the
/// same aggregate for any worker count and any kernel shard count.
void bench_determinism() {
  fleet::FleetCampaignConfig cfg;
  cfg.vehicles = 400;
  cfg.batch_size = 100;
  cfg.epochs = 6;
  cfg.seed = 7;

  cfg.jobs = 1;
  cfg.shards = 1;
  const auto serial = fleet::FleetCampaign(cfg).run();
  cfg.jobs = 2;
  cfg.shards = 8;
  const auto parallel = fleet::FleetCampaign(cfg).run();
  check(serial == parallel,
        "fleet aggregate differs across jobs/shard counts");
  std::printf("determinism: jobs 1/shards 1 == jobs 2/shards 8: %s\n",
              serial == parallel ? "ok" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fleet", argc, argv);

  // `--quick` is the ctest smoke shape; `--full` is the 100k-vehicle run;
  // `--vehicles N` overrides the campaign size outright.
  bool quick = false;
  bool full = false;
  std::uint32_t vehicles_override = 0;
  for (int i = 1; i < reporter.argc(); ++i) {
    const std::string_view arg(reporter.argv()[i]);
    if (arg == "--quick") quick = true;
    if (arg == "--full") full = true;
    if (arg == "--vehicles" && i + 1 < reporter.argc()) {
      vehicles_override = static_cast<std::uint32_t>(
          std::strtoul(reporter.argv()[i + 1], nullptr, 10));
    }
  }
  std::uint32_t vehicles = quick ? 2'000 : full ? 100'000 : 10'000;
  if (vehicles_override != 0) vehicles = vehicles_override;
  const std::uint32_t shards = 8;

  bench_steady(reporter, quick ? 2'000 : 10'000, shards);
  bench_campaign(reporter, vehicles, shards, reporter.jobs());
  bench_determinism();

  const int rc = reporter.finish();
  if (g_failures > 0) {
    std::printf("bench_fleet: %d check(s) failed\n", g_failures);
    return 1;
  }
  return rc;
}
