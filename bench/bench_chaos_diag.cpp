// E15 — chaos campaign: diagnosing application faults while the
// diagnostic path itself is under attack (DESIGN.md §8).
//
// Three sweeps of the full archetype catalogue:
//   baseline  — healthy diagnostic path (reference accuracy);
//   hardened  — lossy diagnostic vnet + primary-assessor host killed and
//               revived mid-run, hardening on (heartbeats, resends,
//               dedupe, staleness, failover);
//   ablated   — same chaos, hardening off (the pre-hardening design).
// Plus the silent-agent scenario both ways: the ablated architecture
// reports a component with a crashed diagnostic agent as verified
// healthy; the hardened one flags the missing evidence.
// The chaos-rig geometry is also an enumerable fault space (DESIGN.md
// §14): `--replay <site:occurrence>` re-executes one enumerated point on
// the chaos-rig sweep configuration, and `--max-points <n>` appends a
// bounded fault-space sweep to the campaign output. bench_fault_space
// owns the exhaustive enumeration.
#include <cstdio>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "scenario/bitfault.hpp"
#include "scenario/chaos.hpp"
#include "scenario/sweep.hpp"

using namespace decos;

namespace {

double accuracy(const scenario::CampaignResult& r) {
  std::size_t correct = 0, runs = 0;
  for (const auto& row : r.per_archetype) {
    correct += row.correct;
    runs += row.runs;
  }
  return runs == 0 ? 0.0
                   : static_cast<double>(correct) / static_cast<double>(runs);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_chaos_diag", argc, argv);
  std::printf("== E15 / chaos campaign: the diagnostic path under attack ==\n\n");

  if (reporter.replay_requested()) {
    const auto point = fault::parse_fault_point(reporter.replay_token());
    if (!point) {
      std::fprintf(stderr, "error: unknown fault site in '%s'\n",
                   reporter.replay_token().c_str());
      return 1;
    }
    scenario::SweepOptions sweep_opts;
    sweep_opts.rig = scenario::SweepOptions::Rig::kChaosRig;
    const scenario::ConvergenceVerdict v =
        scenario::replay_fault_point(sweep_opts, *point);
    std::printf("replay %s on rig %s: fired=%d detected=%d classified=%d "
                "reconverged=%d terminal=%d no-orphans=%d trust=%.3f -> %s\n",
                v.replay_token().c_str(), scenario::to_string(sweep_opts.rig),
                v.fired ? 1 : 0, v.detected ? 1 : 0, v.classified ? 1 : 0,
                v.trust_reconverged ? 1 : 0, v.terminal_outcome ? 1 : 0,
                v.no_orphans ? 1 : 0, v.final_trust,
                v.converged() ? "converged" : "COUNTEREXAMPLE");
    reporter.set_info("replay_converged", v.converged() ? 1.0 : 0.0);
    const int rc = reporter.finish();
    return rc != 0 ? rc : (v.converged() ? 0 : 1);
  }

  const auto archetypes = scenario::standard_archetypes();
  const auto seeds = reporter.seeds_or({901, 902, 903});
  obs::Registry metrics;

  // Baseline on the same 7-component geometry the chaos runs use, so the
  // only difference is the chaos treatment itself.
  scenario::ChaosOptions chaos;
  scenario::Fig10Options base;
  base.components = chaos.components;
  base.assessor_host = chaos.assessor_host;
  const auto baseline =
      scenario::run_campaign(archetypes, seeds, base, reporter.jobs());

  // --trace arms provenance on the hardened sweep and dumps its merged
  // NDJSON journey record (bit-identical for every --jobs value).
  chaos.provenance = reporter.trace_requested();
  scenario::Fig10Options hardened_base;
  hardened_base.provenance_span_cap = reporter.trace_cap();
  const auto hardened = scenario::run_chaos_campaign(
      archetypes, seeds, chaos, hardened_base, reporter.jobs());
  if (reporter.trace_requested()) {
    reporter.set_trace_payload(hardened.provenance_ndjson);
    reporter.set_info("journeys", static_cast<double>(hardened.journeys));
    reporter.set_info("orphaned_journeys",
                      static_cast<double>(hardened.orphaned_journeys));
  }
  chaos.provenance = false;
  scenario::ChaosOptions ablated_opts = chaos;
  ablated_opts.hardening = false;
  const auto ablated = scenario::run_chaos_campaign(archetypes, seeds,
                                                    ablated_opts, {},
                                                    reporter.jobs());

  analysis::Table t({"archetype", "baseline", "chaos hardened", "chaos ablated"});
  for (std::size_t i = 0; i < baseline.per_archetype.size(); ++i) {
    const auto& b = baseline.per_archetype[i];
    const auto& h = hardened.per_archetype[i];
    const auto& a = ablated.per_archetype[i];
    char bb[32], hb[32], ab[32];
    std::snprintf(bb, sizeof bb, "%zu/%zu", b.correct, b.runs);
    std::snprintf(hb, sizeof hb, "%zu/%zu", h.correct, h.runs);
    std::snprintf(ab, sizeof ab, "%zu/%zu", a.correct, a.runs);
    t.add_row({b.name, bb, hb, ab});
    metrics.counter("chaos.runs", "arch=" + h.name).inc(h.runs);
    metrics.counter("chaos.correct", "arch=" + h.name).inc(h.correct);
  }
  std::printf("%s\n", t.render().c_str());

  const double base_acc = accuracy(baseline);
  std::printf("accuracy: baseline %.3f | chaos hardened %.3f | chaos "
              "ablated %.3f\n",
              base_acc, hardened.accuracy(), ablated.accuracy());
  std::printf("diagnostic-path telemetry (hardened, %zu runs): %llu "
              "failovers, %llu failbacks, %llu symptom gaps, %llu "
              "retransmissions, %llu duplicates dropped, %llu heartbeats "
              "received, %llu msgs dropped + %llu corrupted by chaos\n\n",
              hardened.runs,
              static_cast<unsigned long long>(hardened.failovers),
              static_cast<unsigned long long>(hardened.failbacks),
              static_cast<unsigned long long>(hardened.symptom_gaps),
              static_cast<unsigned long long>(hardened.retransmissions),
              static_cast<unsigned long long>(hardened.duplicates_dropped),
              static_cast<unsigned long long>(hardened.heartbeats_received),
              static_cast<unsigned long long>(hardened.chaos_dropped),
              static_cast<unsigned long long>(hardened.chaos_corrupted));

  // Chaos-injector-side counters (these live outside any rig registry);
  // the native diagnostic-path metrics — diag.agent.*, diag.assessor.*,
  // diag.evidence_staleness{fru=...} — arrive via hardened.metrics below.
  metrics.counter("chaos.msgs_dropped").inc(hardened.chaos_dropped);
  metrics.counter("chaos.msgs_corrupted").inc(hardened.chaos_corrupted);

  std::printf("silent-agent scenario (component 1's agent crashed, component "
              "itself healthy):\n");
  const auto on = scenario::run_silent_agent_scenario(true, seeds.front());
  const auto off = scenario::run_silent_agent_scenario(false, seeds.front());
  std::printf("  hardened: evidence quality %.2f, age %llu rounds, "
              "degraded-channel ONA %s -> %s\n",
              on.evidence_quality,
              static_cast<unsigned long long>(on.evidence_age),
              on.channel_degraded_ona ? "asserted" : "absent",
              on.false_healthy() ? "FALSE-HEALTHY" : "flagged for inspection");
  std::printf("  ablated:  evidence quality %.2f, age %llu rounds, "
              "degraded-channel ONA %s -> %s\n",
              off.evidence_quality,
              static_cast<unsigned long long>(off.evidence_age),
              off.channel_degraded_ona ? "asserted" : "absent",
              off.false_healthy() ? "FALSE-HEALTHY" : "flagged for inspection");
  std::printf("  expected: only the ablated architecture conflates the "
              "silenced agent with verified health\n");

  // --ber / --wearout: rides the bit-granular value-fault campaign (E22)
  // along on the same 7-component geometry, so the chaos bench doubles as
  // a quick probe of how a nonstandard bit-error rate or aging profile
  // lands in the taxonomy.
  if (reporter.has_ber() || reporter.has_wearout_profile()) {
    const auto curve = fault::WearoutCurve::profile(
        reporter.wearout_profile_or("bathtub"));
    const auto bit = scenario::run_bitfault_campaign(
        scenario::bitfault_archetypes(reporter.ber_or(2e-3),
                                      curve ? *curve : fault::WearoutCurve{},
                                      reporter.ber_or(5e-3)),
        seeds, base, reporter.jobs());
    std::printf("\nbit-fault campaign (ber/wearout overrides):\n");
    for (const auto& row : bit.rows) {
      const double n = row.runs == 0 ? 1.0 : static_cast<double>(row.runs);
      std::printf("  %-14s class-acc %.2f bit-acc %.2f flips %llu "
                  "orphans %llu\n",
                  row.name.c_str(),
                  static_cast<double>(row.class_correct) / n,
                  static_cast<double>(row.bit_correct) / n,
                  static_cast<unsigned long long>(row.flips),
                  static_cast<unsigned long long>(row.orphan_flips));
      reporter.set_info(
          "bit_class_acc_" + row.name,
          static_cast<double>(row.class_correct) / n);
    }
    reporter.set_info("bit_orphan_flips",
                      static_cast<double>(bit.total_orphans()));
  }

  // --max-points: bounded chaos-rig fault-space sweep riding along with
  // the campaign (the smoke-test hook; the exhaustive sweep lives in
  // bench_fault_space). Oracle violations fail the bench.
  std::size_t sweep_violations = 0;
  if (reporter.has_max_points()) {
    scenario::SweepOptions sweep_opts;
    sweep_opts.rig = scenario::SweepOptions::Rig::kChaosRig;
    const scenario::SweepResult sweep = scenario::run_fault_space_sweep(
        sweep_opts, reporter.max_points(), reporter.jobs());
    sweep_violations = sweep.counterexamples.size();
    if (!sweep.baseline.converged()) ++sweep_violations;
    std::printf("\nchaos-rig fault-space smoke: %zu/%llu points executed, "
                "%zu counterexamples\n",
                sweep.executed,
                static_cast<unsigned long long>(sweep.space_size),
                sweep.counterexamples.size());
    for (const scenario::ConvergenceVerdict& v : sweep.counterexamples) {
      std::printf("  COUNTEREXAMPLE %s (replay: bench_chaos_diag --replay "
                  "%s)\n",
                  v.replay_token().c_str(), v.replay_token().c_str());
    }
    metrics.counter("sweep.chaos-rig.executed").inc(sweep.executed);
    metrics.counter("sweep.chaos-rig.counterexamples").inc(sweep_violations);
    reporter.set_info("sweep_executed", static_cast<double>(sweep.executed));
    reporter.set_info("sweep_counterexamples",
                      static_cast<double>(sweep_violations));
  }

  reporter.absorb(metrics);
  reporter.absorb(hardened.metrics);
  reporter.set_info("baseline_accuracy", base_acc);
  reporter.set_info("chaos_accuracy_hardened", hardened.accuracy());
  reporter.set_info("chaos_accuracy_ablated", ablated.accuracy());
  reporter.set_info("accuracy_gap_hardened", base_acc - hardened.accuracy());
  reporter.set_info("silent_agent_false_healthy_hardened",
                    on.false_healthy() ? 1.0 : 0.0);
  reporter.set_info("silent_agent_false_healthy_ablated",
                    off.false_healthy() ? 1.0 : 0.0);
  const int rc = reporter.finish();
  return rc != 0 ? rc : (sweep_violations != 0 ? 1 : 0);
}
