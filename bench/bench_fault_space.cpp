// E20 — systematic fault-space enumeration (DESIGN.md §14).
//
// Discovery run per rig tallies every reachable (site, occurrence) pair
// of the diagnostic/maintenance path under a deterministic permanent-
// failure scenario; then one armed run per point injects exactly that
// perturbation and the convergence oracle judges the outcome (detected,
// correctly classified, trust reconverged, terminal maintenance outcome,
// zero provenance orphans). Every oracle violation prints as a
// counterexample with a one-line replay token.
//
//   bench_fault_space                        # full enumeration, all rigs
//   bench_fault_space --max-points 50        # bounded smoke (CI)
//   bench_fault_space --replay resend-push:7 # re-execute one point
//
// Exit code is nonzero when any executed point violates the oracle — the
// enumeration is a correctness gate, not a performance figure.
#include <array>
#include <cstdio>
#include <string>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "scenario/sweep.hpp"

using namespace decos;

namespace {

void print_verdict(const scenario::ConvergenceVerdict& v) {
  std::printf("    %-22s fired=%d detected=%d classified=%d reconverged=%d "
              "terminal=%d no-orphans=%d trust=%.3f -> %s\n",
              v.replay_token().c_str(), v.fired ? 1 : 0, v.detected ? 1 : 0,
              v.classified ? 1 : 0, v.trust_reconverged ? 1 : 0,
              v.terminal_outcome ? 1 : 0, v.no_orphans ? 1 : 0, v.final_trust,
              v.converged() ? "converged" : "COUNTEREXAMPLE");
}

/// One rig's sweep: table, counterexample dump, metrics/info export.
/// Returns the number of oracle violations.
std::size_t sweep_rig(obs::BenchReporter& reporter, obs::Registry& metrics,
                      scenario::SweepOptions::Rig rig, std::size_t max_points,
                      unsigned jobs) {
  scenario::SweepOptions opts;
  opts.rig = rig;
  const char* rig_name = scenario::to_string(rig);
  const scenario::SweepResult r =
      scenario::run_fault_space_sweep(opts, max_points, jobs);

  std::printf("-- rig %s: victim component %u, %llu-point space, %zu "
              "executed%s --\n",
              rig_name, scenario::sweep_victim(opts),
              static_cast<unsigned long long>(r.space_size), r.executed,
              r.truncated ? " (truncated by --max-points)" : "");
  if (!r.baseline.converged()) {
    std::printf("  baseline (unperturbed) run violates the oracle:\n");
    print_verdict(r.baseline);
  }

  analysis::Table t({"fault site", "points", "converged", "counterexamples"});
  std::array<std::size_t, fault::kFaultSiteCount> run_by_site{};
  std::array<std::size_t, fault::kFaultSiteCount> bad_by_site{};
  for (const scenario::ConvergenceVerdict& v : r.verdicts) {
    const auto s = static_cast<std::size_t>(v.site);
    ++run_by_site[s];
    if (!v.converged()) ++bad_by_site[s];
  }
  for (int s = 0; s < fault::kFaultSiteCount; ++s) {
    const auto site = static_cast<fault::FaultSite>(s);
    const auto i = static_cast<std::size_t>(s);
    t.add_row({fault::to_string(site),
               std::to_string(r.manifest.counts[i]),
               std::to_string(run_by_site[i] - bad_by_site[i]),
               std::to_string(bad_by_site[i])});
  }
  std::printf("%s", t.render().c_str());
  std::printf("  convergence rate %.4f over %zu points\n", r.convergence_rate(),
              r.executed);
  for (const scenario::ConvergenceVerdict& v : r.counterexamples) {
    print_verdict(v);
    std::printf("      replay: bench_fault_space --replay %s\n",
                v.replay_token().c_str());
  }
  std::printf("\n");

  const std::string prefix = std::string("sweep.") + rig_name;
  metrics.counter(prefix + ".points").inc(r.space_size);
  metrics.counter(prefix + ".executed").inc(r.executed);
  metrics.counter(prefix + ".counterexamples").inc(r.counterexamples.size());
  reporter.set_info(std::string(rig_name) + "_space_size",
                    static_cast<double>(r.space_size));
  reporter.set_info(std::string(rig_name) + "_executed",
                    static_cast<double>(r.executed));
  reporter.set_info(std::string(rig_name) + "_convergence_rate",
                    r.convergence_rate());
  reporter.set_info(std::string(rig_name) + "_counterexamples",
                    static_cast<double>(r.counterexamples.size()));

  std::size_t violations = r.counterexamples.size();
  if (!r.baseline.converged()) ++violations;
  return violations;
}

/// `--replay` path: re-execute one enumerated point on every rig
/// configuration. Succeeds when the point fires on at least one rig and
/// every rig it fires on converges.
int replay(obs::BenchReporter& reporter, const fault::FaultPoint& point) {
  std::printf("replaying %s on all rigs\n", point.token().c_str());
  bool fired_somewhere = false;
  bool violated = false;
  for (const auto rig : {scenario::SweepOptions::Rig::kFig10,
                         scenario::SweepOptions::Rig::kChaosRig,
                         scenario::SweepOptions::Rig::kHierarchy}) {
    scenario::SweepOptions opts;
    opts.rig = rig;
    const scenario::ConvergenceVerdict v =
        scenario::replay_fault_point(opts, point);
    std::printf("  rig %s:\n", scenario::to_string(rig));
    if (!v.fired) {
      std::printf("    point not reached on this rig\n");
      continue;
    }
    fired_somewhere = true;
    print_verdict(v);
    if (!v.converged()) violated = true;
    reporter.set_info(std::string(scenario::to_string(rig)) +
                          "_replay_converged",
                      v.converged() ? 1.0 : 0.0);
  }
  if (!fired_somewhere) {
    std::printf("  point unreachable on every rig (beyond the occurrence "
                "space?)\n");
  }
  const int rc = reporter.finish();
  return rc != 0 ? rc : ((violated || !fired_somewhere) ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fault_space", argc, argv);
  std::printf("== E20 / systematic fault-space enumeration ==\n\n");

  if (reporter.replay_requested()) {
    const auto point = fault::parse_fault_point(reporter.replay_token());
    if (!point) {
      std::fprintf(stderr, "error: unknown fault site in '%s'\n",
                   reporter.replay_token().c_str());
      return 1;
    }
    return replay(reporter, *point);
  }

  const std::size_t max_points =
      reporter.has_max_points() ? reporter.max_points() : 0;
  obs::Registry metrics;
  std::size_t violations = 0;
  violations += sweep_rig(reporter, metrics, scenario::SweepOptions::Rig::kFig10,
                          max_points, reporter.jobs());
  violations += sweep_rig(reporter, metrics,
                          scenario::SweepOptions::Rig::kChaosRig, max_points,
                          reporter.jobs());
  violations += sweep_rig(reporter, metrics,
                          scenario::SweepOptions::Rig::kHierarchy, max_points,
                          reporter.jobs());

  if (violations == 0) {
    std::printf("every executed point converged: the maintenance loop "
                "absorbs each enumerated single fault\n");
  } else {
    std::printf("%zu oracle violations — each line above carries its replay "
                "token\n", violations);
  }

  reporter.absorb(metrics);
  reporter.set_info("oracle_violations", static_cast<double>(violations));
  const int rc = reporter.finish();
  return rc != 0 ? rc : (violations != 0 ? 1 : 0);
}
