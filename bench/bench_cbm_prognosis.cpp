// E11 — Section III-E extension: Condition-Based Maintenance.
//
// The paper proposes the rising transient-failure rate as the wearout
// indicator that CBM needs. This experiment closes the loop: a component
// wears out with a known (injected) gap-shrink; the diagnostic DAS
// observes the episodes; the WearoutTracker fits the trend mid-life and
// predicts the end of life; the run then continues until the device
// actually dies (episodes merge into continuous failure) and the
// prediction error is scored. Swept over shrink rates and seeds.
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "analysis/cbm.hpp"
#include "analysis/table.hpp"
#include "diag/features.hpp"
#include "exec/runner.hpp"
#include "obs/bench_io.hpp"
#include "scenario/fig10.hpp"

using namespace decos;

namespace {

struct Outcome {
  double fitted_shrink;
  tta::RoundId predicted_eol;
  tta::RoundId actual_eol;  // first round of the merged terminal episode
  bool predicted;
};

Outcome run_one(std::uint64_t seed, double shrink) {
  scenario::Fig10System rig({.seed = seed});
  rig.injector().inject_wearout(1, sim::SimTime{0} + sim::milliseconds(300),
                                sim::milliseconds(700), shrink,
                                sim::milliseconds(10));
  rig.run(sim::seconds(10));

  diag::FeatureParams fp;
  const auto eps =
      diag::sender_episodes(rig.diag().assessor().evidence(), 1, fp);

  Outcome out{1.0, 0, 0, false};
  if (eps.size() < 6) return out;

  // Actual end of life: the first episode whose observed span has grown
  // past the EOL gap (episodes merged into a quasi-continuous run).
  for (const auto& e : eps) {
    if (e.last - e.first >= 40 && out.actual_eol == 0) out.actual_eol = e.first;
  }
  if (out.actual_eol == 0) out.actual_eol = eps.back().first;

  // Prognosis from the first five episodes only (mid-life).
  analysis::WearoutTracker tracker;
  for (std::size_t i = 0; i < 5; ++i) tracker.add_episode(eps[i].first);
  const auto prog = tracker.prognose(eps[4].first + 10);
  if (!prog) return out;
  out.predicted = true;
  out.fitted_shrink = prog->shrink;
  out.predicted_eol = prog->end_of_life_round;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_cbm_prognosis", argc, argv);
  obs::Registry metrics;
  obs::Histogram abs_err_pct = metrics.histogram("cbm.eol_abs_error_pct");
  std::printf("== E11 / CBM: remaining-useful-life prognosis from the "
              "wearout indicator ==\n\n");

  analysis::Table t({"injected shrink", "seed", "fitted shrink",
                     "predicted EOL [round]", "actual EOL [round]",
                     "error [%]"});
  // The (shrink, seed) sweep on the experiment engine: each run is an
  // isolated rig; the ordered fold keeps the table rows and histogram
  // identical for every --jobs value.
  const auto seeds = reporter.seeds_or({1101, 1102, 1103});
  std::vector<std::pair<double, std::uint64_t>> cells;
  std::vector<std::function<Outcome()>> runs;
  for (const double shrink : {0.65, 0.75, 0.85}) {
    for (const std::uint64_t seed : seeds) {
      cells.emplace_back(shrink, seed);
      runs.push_back([seed, shrink] { return run_one(seed, shrink); });
    }
  }
  int predicted = 0, total = 0;
  exec::ExperimentRunner runner(reporter.jobs());
  runner.run_and_merge<Outcome>(
      std::move(runs), [&](std::size_t i, const Outcome& o) {
        const auto [shrink, seed] = cells[i];
        ++total;
        if (!o.predicted) {
          t.add_row({analysis::Table::num(shrink, 2), std::to_string(seed),
                     "-", "-", std::to_string(o.actual_eol), "-"});
          return;
        }
        ++predicted;
        const double err =
            100.0 *
            (static_cast<double>(o.predicted_eol) -
             static_cast<double>(o.actual_eol)) /
            static_cast<double>(o.actual_eol);
        abs_err_pct.record(static_cast<std::int64_t>(err < 0 ? -err : err));
        t.add_row({analysis::Table::num(shrink, 2), std::to_string(seed),
                   analysis::Table::num(o.fitted_shrink, 3),
                   std::to_string(o.predicted_eol),
                   std::to_string(o.actual_eol), analysis::Table::num(err, 1)});
      });
  std::printf("%s\n", t.render().c_str());
  std::printf("prognoses produced: %d/%d\n", predicted, total);
  std::printf("expected shape: fitted shrink tracks the injected shrink; "
              "EOL predictions from only five observed episodes land within "
              "tens of percent of the actual failure time — enough to "
              "schedule the replacement before the FRU dies in the field\n");
  metrics.counter("cbm.prognoses").inc(static_cast<std::uint64_t>(predicted));
  metrics.counter("cbm.runs").inc(static_cast<std::uint64_t>(total));
  reporter.absorb(metrics);
  reporter.set_info("prognoses_produced", static_cast<double>(predicted));
  return reporter.finish();
}
