// E5 — Fig. 11: maintenance action per fault class, measured.
//
// The summary experiment: every archetype of the maintenance-oriented
// fault model (the standard campaign catalogue — thirteen archetypes
// covering all six classes) is injected across several seeds; the
// diagnostic DAS classifies the affected FRU; the confusion matrix and
// the resulting action table are printed. This is the executable version
// of Fig. 11 — with a measured accuracy column the conceptual paper could
// not provide.
#include <cstdio>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "scenario/campaign.hpp"

using namespace decos;

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig11_actions", argc, argv);
  std::printf("== E5 / Fig. 11: measured maintenance-action table ==\n\n");

  const auto archetypes = scenario::standard_archetypes();
  const auto seeds = reporter.seeds_or({501, 502, 503, 504, 505});
  const auto result =
      scenario::run_campaign(archetypes, seeds, {}, reporter.jobs());

  analysis::Table t({"injected archetype", "true class", "Fig.11 action",
                     "diagnosed correctly"});
  obs::Registry metrics;
  std::size_t total_correct = 0, total_runs = 0;
  for (const auto& row : result.per_archetype) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%zu/%zu", row.correct, row.runs);
    t.add_row({row.name, fault::to_string(row.truth),
               fault::to_string(fault::action_for(row.truth)), buf});
    const std::string label = "arch=" + row.name;
    metrics.counter("campaign.runs", label).inc(row.runs);
    metrics.counter("campaign.correct", label).inc(row.correct);
    total_correct += row.correct;
    total_runs += row.runs;
  }
  reporter.absorb(metrics);
  reporter.set_info("campaign_accuracy",
                    total_runs == 0 ? 0.0
                                    : static_cast<double>(total_correct) /
                                          static_cast<double>(total_runs));
  std::printf("%s\n", t.render().c_str());
  std::printf("confusion matrix (all archetypes x %zu seeds):\n%s\n",
              seeds.size(), result.confusion.to_table().c_str());
  std::printf("expected shape: high recall on every class; residual "
              "confusion only between classes the paper itself calls "
              "indistinguishable from the interface alone\n");
  return reporter.finish();
}
