// E8 — Section IV-B.1: the 20-80 rule of operational software failures,
// recovered by fleet analysis.
//
// 100 software modules receive fault densities from the Pareto allocator;
// a fleet of vehicles runs them and reports operational failures
// (Heisenbug activations ~ Poisson per module density). Fleet correlation
// must (a) measure a head share near 80% for the top 20% of modules and
// (b) point the engineering feedback at exactly the seeded top modules.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/fleet.hpp"
#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "reliability/pareto.hpp"
#include "sim/rng.hpp"

using namespace decos;

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_software_pareto", argc, argv);
  std::printf("== E8 / Section IV-B.1: software 20-80 rule via fleet "
              "analysis ==\n\n");

  const std::size_t modules = 100;
  const std::size_t vehicles = 500;
  const double failures_per_vehicle = 12.0;  // over the observation period

  reliability::ParetoAllocator pareto;  // 20% -> 80%
  const auto weights = pareto.weights(modules);

  sim::Rng rng(808);
  analysis::FleetAnalyzer fleet;
  for (std::uint32_t v = 0; v < vehicles; ++v) {
    for (std::uint32_t m = 0; m < modules; ++m) {
      const auto n = rng.poisson(failures_per_vehicle * weights[m]);
      if (n > 0) fleet.record(v, m, n);
    }
  }

  const auto ranked = fleet.ranking();
  analysis::Table top({"rank", "module", "failures", "vehicles reporting",
                       "seeded weight"});
  for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
    top.add_row({std::to_string(i + 1), std::to_string(ranked[i].module),
                 std::to_string(ranked[i].failures),
                 std::to_string(ranked[i].vehicles),
                 analysis::Table::num(weights[ranked[i].module], 4)});
  }
  std::printf("%s\n", top.render().c_str());

  std::printf("total failures across fleet: %llu from %u vehicles\n",
              static_cast<unsigned long long>(fleet.total_failures()),
              fleet.vehicles_reporting());
  std::printf("head share measured: top 20%% of modules carry %.1f%% of "
              "failures (paper: ~80%%)\n",
              100.0 * fleet.head_share(0.20));

  // Engineering feedback: design-fault candidates are modules failing on
  // many vehicles. Check they are the seeded head.
  const auto candidates = fleet.design_fault_candidates(
      static_cast<std::uint32_t>(vehicles / 4));
  std::size_t in_head = 0;
  for (std::uint32_t m : candidates) {
    if (m < modules / 5) ++in_head;
  }
  std::printf("design-fault candidates (>=25%% of vehicles): %zu, of which "
              "%zu are seeded head modules\n",
              candidates.size(), in_head);
  std::printf("expected shape: measured head share ~80%%; candidate list is "
              "dominated by the seeded high-density modules\n");

  obs::Registry metrics;
  metrics.counter("fleet.total_failures").inc(fleet.total_failures());
  metrics.counter("fleet.vehicles_reporting").inc(fleet.vehicles_reporting());
  obs::Histogram per_module = metrics.histogram("fleet.failures_per_module");
  for (const auto& r : ranked) {
    per_module.record(static_cast<std::int64_t>(r.failures));
  }
  reporter.absorb(metrics);
  reporter.set_info("head_share_top20", fleet.head_share(0.20));
  reporter.set_info("design_fault_candidates",
                    static_cast<double>(candidates.size()));
  return reporter.finish();
}
