// E9 — Fig. 1's waist line: the four core services, quantified.
//
// C1 predictable transport: frames per second through the TDMA schedule
//    and the conflict-freedom of the static slots.
// C2 fault-tolerant clock sync: achieved precision vs crystal drift bound.
// C3 strong fault isolation: babbling-idiot containment by the guardian.
// C4 consistent diagnosis of failing nodes: membership detection latency.
#include <chrono>
#include <cstdio>

#include "analysis/table.hpp"
#include "obs/bench_io.hpp"
#include "scenario/fig10.hpp"
#include "tta/cluster.hpp"

using namespace decos;

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_core_services", argc, argv);
  std::printf("== E9 / core services of the time-triggered architecture ==\n\n");

  // --- C2: precision vs drift bound -------------------------------------------
  analysis::Table prec({"drift bound [ppm]", "achieved precision [us]",
                        "raw 2s drift if unsynced [us]"});
  for (const double ppm : {10.0, 25.0, 50.0, 100.0, 200.0}) {
    sim::Simulator simulator(901);
    tta::Cluster::Params p;
    p.node_count = 5;
    p.tdma.slot_length = sim::microseconds(500);
    p.drift_bound_ppm = ppm;
    tta::Cluster cluster(simulator, p);
    cluster.start();
    simulator.run_until(sim::SimTime{0} + sim::seconds(2));
    prec.add_row({analysis::Table::num(ppm, 0),
                  analysis::Table::num(cluster.precision().us(), 2),
                  analysis::Table::num(2.0 * ppm * 2.0, 0)});
    reporter.absorb(simulator.metrics());
  }
  std::printf("%s\n", prec.render().c_str());

  // --- C4: membership detection latency ----------------------------------------
  {
    sim::Simulator simulator(902);
    tta::Cluster::Params p;
    p.node_count = 5;
    p.tdma.slot_length = sim::microseconds(500);
    tta::Cluster cluster(simulator, p);
    cluster.start();
    simulator.run_until(sim::SimTime{0} + sim::milliseconds(50));
    const auto kill_round = cluster.node(0).current_round();
    cluster.node(3).faults().fail_silent = true;
    tta::RoundId detected_round = 0;
    cluster.node(0).membership_handler = [&](tta::RoundId r, std::uint64_t m) {
      if (detected_round == 0 && (m & (1u << 3)) == 0) detected_round = r;
    };
    simulator.run_until(sim::SimTime{0} + sim::milliseconds(100));
    std::printf("C4 membership: fail-silent node detected after %llu round(s) "
                "(paper: consistent diagnosis within one TDMA round)\n",
                static_cast<unsigned long long>(detected_round - kill_round));
    reporter.set_info("c4_membership_detection_rounds",
                      static_cast<double>(detected_round - kill_round));
    reporter.absorb(simulator.metrics());
  }

  // --- C3: guardian containment --------------------------------------------------
  {
    sim::Simulator simulator(903);
    tta::Cluster::Params p;
    p.node_count = 5;
    p.tdma.slot_length = sim::microseconds(500);
    tta::Cluster cluster(simulator, p);
    cluster.start();
    simulator.run_until(sim::SimTime{0} + sim::milliseconds(20));
    // Babble 200 times at random offsets.
    sim::Rng rng(9);
    std::uint64_t blocked_before = cluster.bus().frames_blocked();
    int attempts = 0, in_slot = 0;
    for (int i = 0; i < 200; ++i) {
      const auto at = simulator.now() +
                      sim::Duration{rng.uniform_int(100'000, 5'000'000)};
      simulator.schedule_at(at, [&] {
        ++attempts;
        if (cluster.node(2).attempt_transmit_now()) ++in_slot;
      });
    }
    simulator.run_until(simulator.now() + sim::milliseconds(50));
    std::printf("C3 guardian: %d babbling attempts, %d landed inside the "
                "node's own slot, %llu blocked by the guardian\n",
                attempts, in_slot,
                static_cast<unsigned long long>(cluster.bus().frames_blocked() -
                                                blocked_before));
    reporter.set_info("c3_guardian_blocked",
                      static_cast<double>(cluster.bus().frames_blocked() -
                                          blocked_before));
    reporter.absorb(simulator.metrics());
  }

  // --- C1: transport throughput (wall clock) -----------------------------------
  {
    sim::Simulator simulator(904);
    tta::Cluster::Params p;
    p.node_count = 8;
    p.tdma.slot_length = sim::microseconds(500);
    tta::Cluster cluster(simulator, p);
    cluster.start();
    const auto t0 = std::chrono::steady_clock::now();
    simulator.run_until(sim::SimTime{0} + sim::seconds(10));
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(t1 - t0).count();
    const double frames = static_cast<double>(cluster.bus().frames_sent());
    std::printf("C1 transport: %.0f frames in 10 simulated s (8 nodes), "
                "simulated at %.2f Mevents/s wall (%.0f ms wall)\n",
                frames,
                static_cast<double>(simulator.events_executed()) / wall / 1e6,
                wall * 1e3);
    reporter.set_info("c1_frames", frames);
    reporter.set_info(
        "c1_mevents_per_sec",
        static_cast<double>(simulator.events_executed()) / wall / 1e6);
    reporter.absorb(simulator.metrics());
  }

  std::printf("\nexpected shape: precision orders of magnitude below raw "
              "drift; membership detects within ~1 round; guardian blocks "
              "every out-of-slot babble\n");
  return reporter.finish();
}
