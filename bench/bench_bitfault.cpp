// E22 — bit-granular value-fault plane: BER sampler throughput, the
// pooled broadcast path's allocation profile, and classifier separation
// of the bit-fault workloads.
//
// Section 1 (sampler): geometric skip-sampling cost — bits/s scanned at
// BER 0 (the disabled plane must be a branch, not a loop) and flips/s at
// a realistic wearout BER.
//
// Section 2 (transmit): a five-node TDMA broadcast loop on the raw bus.
// With faults off, the ref-counted FramePool shares one master frame per
// transmission across every receiver — steady state must allocate
// *nothing* per round (the perf gate holds this at exactly 0). A second
// pass arms a receiver-side BER sampler and reports the copy-on-corrupt
// traffic: corrupted deliveries pay for a private pool slot, pristine
// ones keep riding the shared master.
//
// Section 3 (campaign): the wearout/EMI/SEU workloads of
// scenario/bitfault.hpp, honouring `--ber <rate>` (EMI/SEU receive BER)
// and `--wearout <profile>` (wearout curve). Reports per-archetype
// taxonomy and bit-pattern accuracy plus the orphan-flip audit: every
// logged flip must belong to a provenance journey.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string_view>
#include <vector>

#include "fault/bitfault.hpp"
#include "obs/bench_io.hpp"
#include "scenario/bitfault.hpp"
#include "sim/simulator.hpp"
#include "tta/bus.hpp"
#include "tta/frame.hpp"
#include "tta/tdma.hpp"

namespace {
unsigned long long g_allocs = 0;
}

// Counting global allocator hooks: every variant funnels through malloc so
// the count covers array, nothrow and over-aligned forms alike.
void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_allocs;
  const auto align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace decos;

// --- section 1: sampler ------------------------------------------------------

void bench_sampler(obs::BenchReporter& reporter, std::uint64_t frames) {
  sim::Simulator s(11);
  const std::uint64_t bits_per_frame = 1024;

  fault::BerSampler off(s.fork_rng("bench.ber.off"));
  off.set_ber(0.0);
  std::uint64_t sink = 0;
  auto w0 = std::chrono::steady_clock::now();
  for (std::uint64_t f = 0; f < frames; ++f) {
    off.scan(bits_per_frame, [&](std::uint64_t bit) { sink += bit; });
  }
  auto w1 = std::chrono::steady_clock::now();
  const double bits_scanned =
      static_cast<double>(frames) * static_cast<double>(bits_per_frame);
  const double gbits_off =
      bits_scanned / std::chrono::duration<double>(w1 - w0).count() / 1e9;

  fault::BerSampler on(s.fork_rng("bench.ber.on"));
  on.set_ber(1e-3);
  std::uint64_t flips = 0;
  w0 = std::chrono::steady_clock::now();
  for (std::uint64_t f = 0; f < frames; ++f) {
    on.scan(bits_per_frame, [&](std::uint64_t bit) {
      sink += bit;
      ++flips;
    });
  }
  w1 = std::chrono::steady_clock::now();
  const double flips_per_sec = static_cast<double>(flips) /
                               std::chrono::duration<double>(w1 - w0).count();

  std::printf(
      "sampler: ber0 %.1f Gbit/s scanned, ber1e-3 %llu flips (%.3g "
      "flips/s) sink=%llu\n",
      gbits_off, static_cast<unsigned long long>(flips), flips_per_sec,
      static_cast<unsigned long long>(sink));
  reporter.set_info("sampler_gbits_per_sec_ber0", gbits_off);
  reporter.set_info("sampler_flips_per_sec", flips_per_sec);
}

// --- section 2: pooled transmit ---------------------------------------------

struct Sink : tta::BusReceiver {
  tta::NodeId id = 0;
  std::uint64_t bytes = 0;
  std::uint64_t crc_bad = 0;
  void on_frame(const tta::Frame& f, sim::SimTime) override {
    bytes += f.payload.size();
    if (!f.crc_ok()) ++crc_bad;
  }
  [[nodiscard]] tta::NodeId node_id() const override { return id; }
};

/// One five-node broadcast round loop on the raw bus; `rx_ber` > 0 arms a
/// receiver-side sampler on node 2 (the copy-on-corrupt pass).
struct TransmitStats {
  double rounds_per_sec = 0.0;
  double allocs_per_round = 0.0;
  double corrupt_copies_per_round = 0.0;
  std::uint64_t crc_bad = 0;
};

TransmitStats bench_transmit(tta::RoundId rounds, double rx_ber) {
  constexpr std::uint32_t kNodes = 5;
  sim::Simulator s(7);
  tta::TdmaSchedule sched{tta::TdmaSchedule::Params{
      .slots_per_round = kNodes, .slot_length = sim::microseconds(500)}};
  tta::Bus bus(s, sched, tta::Bus::Params{});

  std::vector<Sink> sinks(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    sinks[n].id = n;
    bus.attach(sinks[n]);
  }

  fault::BerSampler sampler(s.fork_rng("bench.transmit.rx"));
  sampler.set_ber(rx_ber);
  std::vector<std::uint64_t> bits;
  bits.reserve(64);
  if (rx_ber > 0.0) {
    bus.add_channel_fault([&sampler, &bits](tta::Delivery& d,
                                            tta::NodeId receiver,
                                            sim::SimTime) {
      if (receiver != 2) return true;
      const std::uint64_t nbits = d.frame().payload.size() * 8;
      bits.clear();
      sampler.scan(nbits, [&bits](std::uint64_t b) { bits.push_back(b); });
      if (bits.empty()) return true;
      tta::Frame& copy = d.corrupt();
      for (const std::uint64_t b : bits) {
        copy.payload[b >> 3] ^= static_cast<std::uint8_t>(1u << (b & 7));
      }
      return true;
    });
  }

  tta::Frame frame;
  frame.payload.assign(96, 0xA5);  // a typical muxed TDMA payload
  frame.seal();

  const std::uint64_t copies0 = bus.frame_pool()->corrupt_copies();

  // Self-rescheduling per-node senders, the E18 idiom: each node's chain
  // event transmits its slot and re-arms for the next round, so the event
  // queue stays at its (tiny) steady-state size and the measured region
  // exercises only the broadcast path — transmit, pooled delivery, hook.
  struct NodeChain {
    sim::Simulator* s = nullptr;
    tta::Bus* bus = nullptr;
    const tta::TdmaSchedule* sched = nullptr;
    tta::Frame* frame = nullptr;
    std::uint32_t node = 0;
    tta::RoundId round = 0;
    tta::RoundId stop = 0;
    void arm() {
      s->schedule_at(sched->send_instant(round, node),
                     [this] {
                       frame->sender = node;
                       frame->slot = static_cast<tta::SlotId>(node);
                       frame->round = round;
                       (void)bus->transmit(node, *frame);
                       if (++round < stop) arm();
                     },
                     sim::EventPriority::kTransport);
    }
  };
  std::vector<NodeChain> chains(kNodes);
  auto run_rounds = [&](tta::RoundId first, tta::RoundId n) {
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      chains[node] = NodeChain{&s, &bus, &sched, &frame, node, first,
                               static_cast<tta::RoundId>(first + n)};
      chains[node].arm();
    }
    s.run_until(sched.slot_start(first + n, 0));
  };

  run_rounds(0, 256);  // warm-up: pool, kernel slab, payload capacity
  const auto a0 = g_allocs;
  const auto w0 = std::chrono::steady_clock::now();
  run_rounds(256, rounds);
  const auto w1 = std::chrono::steady_clock::now();
  const auto allocs = g_allocs - a0;
  const double wall = std::chrono::duration<double>(w1 - w0).count();

  TransmitStats t;
  t.rounds_per_sec = static_cast<double>(rounds) / wall;
  t.allocs_per_round =
      static_cast<double>(allocs) / static_cast<double>(rounds);
  t.corrupt_copies_per_round =
      static_cast<double>(bus.frame_pool()->corrupt_copies() - copies0) /
      static_cast<double>(rounds);
  for (const Sink& sk : sinks) t.crc_bad += sk.crc_bad;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_bitfault", argc, argv);

  bool quick = false;
  for (int i = 1; i < reporter.argc(); ++i) {
    if (std::string_view(reporter.argv()[i]) == "--quick") quick = true;
  }

  bench_sampler(reporter, quick ? 200'000 : 2'000'000);

  const TransmitStats clean = bench_transmit(quick ? 20'000 : 100'000, 0.0);
  std::printf(
      "transmit(faults off): rounds_per_sec=%.3g allocs_per_round=%.4f\n",
      clean.rounds_per_sec, clean.allocs_per_round);
  reporter.set_info("tx_rounds_per_sec", clean.rounds_per_sec);
  reporter.set_info("allocs_per_round", clean.allocs_per_round);

  const TransmitStats noisy = bench_transmit(quick ? 20'000 : 100'000, 5e-4);
  std::printf(
      "transmit(rx ber 5e-4): rounds_per_sec=%.3g allocs_per_round=%.4f "
      "corrupt_copies_per_round=%.4f crc_bad=%llu\n",
      noisy.rounds_per_sec, noisy.allocs_per_round,
      noisy.corrupt_copies_per_round,
      static_cast<unsigned long long>(noisy.crc_bad));
  reporter.set_info("corrupt_copies_per_round", noisy.corrupt_copies_per_round);

  // Section 3: classifier separation campaign.
  const std::vector<std::uint64_t> seeds =
      reporter.seeds_or(quick ? std::vector<std::uint64_t>{1}
                              : std::vector<std::uint64_t>{1, 2, 3, 4, 5});
  const double emi_ber = reporter.ber_or(2e-3);
  const double seu_ber = reporter.ber_or(5e-3);
  const auto curve = fault::WearoutCurve::profile(
      reporter.wearout_profile_or("bathtub"));

  const scenario::BitCampaignResult campaign = scenario::run_bitfault_campaign(
      scenario::bitfault_archetypes(emi_ber,
                                    curve ? *curve : fault::WearoutCurve{},
                                    seu_ber),
      seeds, {}, reporter.jobs());

  std::printf(
      "\n%-14s %5s %9s %7s %8s %8s %8s %8s %8s\n", "archetype", "runs",
      "class-acc", "bit-acc", "flips", "orphans", "f/event", "burst", "ratio");
  for (const auto& row : campaign.rows) {
    const double n = row.runs == 0 ? 1.0 : static_cast<double>(row.runs);
    const double class_acc = static_cast<double>(row.class_correct) / n;
    const double bit_acc = static_cast<double>(row.bit_correct) / n;
    std::printf("%-14s %5zu %9.2f %7.2f %8llu %8llu %8.2f %8.2f %8.2f\n",
                row.name.c_str(), row.runs, class_acc, bit_acc,
                static_cast<unsigned long long>(row.flips),
                static_cast<unsigned long long>(row.orphan_flips),
                row.mean_flips_per_event, row.mean_burst_len,
                row.mean_rate_ratio);
    reporter.set_info("class_acc_" + row.name, class_acc);
    reporter.set_info("bit_acc_" + row.name, bit_acc);
  }
  reporter.set_info("campaign_flips",
                    static_cast<double>(campaign.total_flips()));
  reporter.set_info("orphan_flips",
                    static_cast<double>(campaign.total_orphans()));

  return reporter.finish();
}
