# E22 gate: compares a fresh `bench_bitfault --json` snapshot against the
# checked-in baseline (bench/baselines/bench_bitfault.json) and fails on
#
#   * any allocation per round on the pooled broadcast path with faults
#     off (allocs_per_round must stay exactly 0 — machine-independent: the
#     ref-counted FramePool shares one master frame per transmission),
#   * a transmit-throughput regression beyond TOLERANCE_PCT (default 10 %)
#     on tx_rounds_per_sec, and
#   * any orphan flip in the campaign (every logged bit flip must belong
#     to a provenance journey).
#
# Usage:
#   cmake -DCURRENT=<fresh.json> -DBASELINE=<baseline.json>
#         [-DTOLERANCE_PCT=10] -P tools/check_bitfault.cmake
#
# The throughput floor is relative to the checked-in baseline, recorded on
# a modest reference box — the gate catches collapses (a re-introduced
# per-receiver frame copy, per-delivery allocation), not jitter. Refresh
# the baseline (bench/baselines/README.md) when the reference hardware or
# the bench shape changes.
if(NOT DEFINED CURRENT OR NOT DEFINED BASELINE)
  message(FATAL_ERROR
    "usage: cmake -DCURRENT=<json> -DBASELINE=<json> -P check_bitfault.cmake")
endif()
if(NOT DEFINED TOLERANCE_PCT)
  set(TOLERANCE_PCT 10)
endif()

file(READ "${CURRENT}" current_json)
file(READ "${BASELINE}" baseline_json)

function(read_info out json_text key)
  string(JSON v ERROR_VARIABLE err GET "${json_text}" info ${key})
  if(err)
    message(FATAL_ERROR "snapshot lacks info.${key}: ${err}")
  endif()
  set(${out} "${v}" PARENT_SCOPE)
endfunction()

# Scales a decimal number string by 100 into a 64-bit integer (truncating);
# scientific notation is rejected loudly rather than misparsed.
function(to_centi out value)
  if(value MATCHES "[eE]")
    message(FATAL_ERROR "cannot parse scientific notation: ${value}")
  endif()
  if(NOT value MATCHES "^(-?)([0-9]+)(\\.([0-9]+))?$")
    message(FATAL_ERROR "not a number: ${value}")
  endif()
  set(sign "${CMAKE_MATCH_1}")
  set(int_part "${CMAKE_MATCH_2}")
  set(frac "${CMAKE_MATCH_4}00")
  string(SUBSTRING "${frac}" 0 2 frac)
  math(EXPR scaled "${sign}(${int_part} * 100 + ${frac})")
  set(${out} "${scaled}" PARENT_SCOPE)
endfunction()

set(failures 0)

# Throughput: current must stay within TOLERANCE_PCT of baseline.
read_info(cur "${current_json}" tx_rounds_per_sec)
read_info(base "${baseline_json}" tx_rounds_per_sec)
to_centi(cur_c "${cur}")
to_centi(base_c "${base}")
math(EXPR floor_c "${base_c} * (100 - ${TOLERANCE_PCT}) / 100")
if(cur_c LESS floor_c)
  message(SEND_ERROR
    "perf regression: tx_rounds_per_sec = ${cur} < ${TOLERANCE_PCT}% floor "
    "of baseline ${base}")
  math(EXPR failures "${failures} + 1")
else()
  message(STATUS "tx_rounds_per_sec: ${cur} (baseline ${base}) ok")
endif()

# Hard zeros: fault-free pooled broadcast allocates nothing; every flip is
# journey-linked.
foreach(key allocs_per_round orphan_flips)
  read_info(cur "${current_json}" ${key})
  to_centi(cur_c "${cur}")
  if(cur_c GREATER 0)
    message(SEND_ERROR "${key} = ${cur} (want 0)")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "${key}: ${cur} ok")
  endif()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "bitfault gate failed: ${failures} check(s)")
endif()
message(STATUS "bitfault gate passed")
