# E21 gate: compares a fresh `bench_hierarchy_scaling --json` snapshot
# against the checked-in baseline (bench/baselines/).
#
# The bench runs in logical (simulated) time with a fixed seed, so its
# headline numbers are deterministic counts, not throughput figures:
#
#   * structural fields (scale_convicted, kill_convicted, failovers,
#     flagship_converged, frus) must match the baseline EXACTLY — any
#     drift means hierarchical diagnosis stopped converging or the legacy
#     failover path re-engaged;
#   * traffic/latency fields (msgs_per_round_N, detect_rounds_N) get a
#     small tolerance (default 15 %) so a last-ulp classifier or libm
#     difference that shifts one detection by a round does not fail CI,
#     while an O(N^2) traffic regression (a >= 2x blowup even at N=8)
#     still trips immediately.
#
# Usage:
#   cmake -DCURRENT=<fresh.json> -DBASELINE=<baseline.json>
#         [-DTOLERANCE_PCT=15] -P tools/check_hierarchy.cmake
if(NOT DEFINED CURRENT OR NOT DEFINED BASELINE)
  message(FATAL_ERROR
    "usage: cmake -DCURRENT=<json> -DBASELINE=<json> -P check_hierarchy.cmake")
endif()
if(NOT DEFINED TOLERANCE_PCT)
  set(TOLERANCE_PCT 15)
endif()

file(READ "${CURRENT}" current_json)
file(READ "${BASELINE}" baseline_json)

function(read_info out json_text key)
  string(JSON v ERROR_VARIABLE err GET "${json_text}" info ${key})
  if(err)
    message(FATAL_ERROR "snapshot lacks info.${key}: ${err}")
  endif()
  set(${out} "${v}" PARENT_SCOPE)
endfunction()

# Scales a decimal number string by 100 into an integer (truncating) so
# comparisons use CMake's integer math().
function(to_centi out value)
  if(value MATCHES "[eE]")
    message(FATAL_ERROR "cannot parse scientific notation: ${value}")
  endif()
  if(NOT value MATCHES "^(-?)([0-9]+)(\\.([0-9]+))?$")
    message(FATAL_ERROR "not a number: ${value}")
  endif()
  set(sign "${CMAKE_MATCH_1}")
  set(int_part "${CMAKE_MATCH_2}")
  set(frac "${CMAKE_MATCH_4}00")
  string(SUBSTRING "${frac}" 0 2 frac)
  math(EXPR scaled "${sign}(${int_part} * 100 + ${frac})")
  set(${out} "${scaled}" PARENT_SCOPE)
endfunction()

set(failures 0)

# Structural fields: exact match against the baseline.
foreach(key scale_convicted kill_convicted failovers flagship_converged frus)
  read_info(cur "${current_json}" ${key})
  read_info(base "${baseline_json}" ${key})
  to_centi(cur_c "${cur}")
  to_centi(base_c "${base}")
  if(NOT cur_c EQUAL base_c)
    message(SEND_ERROR
      "hierarchy invariant broke: ${key} = ${cur} (baseline ${base})")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "${key}: ${cur} ok")
  endif()
endforeach()

# Traffic and latency: within TOLERANCE_PCT of the baseline, both ways —
# traffic shrinking far below baseline would mean the overlay stopped
# monitoring, growing far above would mean the N log N bound is gone.
foreach(key msgs_per_round_8 msgs_per_round_16 msgs_per_round_32
        msgs_per_round_64 detect_rounds_8 detect_rounds_16 detect_rounds_32
        detect_rounds_64)
  read_info(cur "${current_json}" ${key})
  read_info(base "${baseline_json}" ${key})
  to_centi(cur_c "${cur}")
  to_centi(base_c "${base}")
  math(EXPR floor_c "${base_c} * (100 - ${TOLERANCE_PCT}) / 100")
  math(EXPR ceil_c "${base_c} * (100 + ${TOLERANCE_PCT}) / 100")
  if(cur_c LESS floor_c OR cur_c GREATER ceil_c)
    message(SEND_ERROR
      "hierarchy scaling drifted: ${key} = ${cur} outside ${TOLERANCE_PCT}% "
      "band around baseline ${base}")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "${key}: ${cur} (baseline ${base}) ok")
  endif()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "hierarchy smoke failed: ${failures} check(s)")
endif()
message(STATUS "hierarchy smoke passed")
