# Fleet-scale gate (E23): compares a fresh `bench_fleet --json` snapshot
# against the checked-in baseline (bench/baselines/bench_fleet.json) and
# fails on
#
#   * a throughput regression beyond TOLERANCE_PCT (default 15 %) on
#     vehicle_epochs_per_sec and campaign_vehicles_per_sec,
#   * ANY steady-state allocation (steady_allocs must be exactly 0 — this
#     is also the cross-shard proof: a push landing on a foreign shard
#     would grow a cold slab and trip the counter), and
#   * the paper's verdict shapes drifting: the naive and guided NFF ratios
#     must stay within an absolute ±NFF_BAND (default 0.05) of baseline,
#     and the bathtub / head-share ratios must keep their Fig. 7 / Fig. 12
#     separations (infant_over_valley and wearout_over_valley above 2,
#     sw_head_share above 0.5).
#
# Usage:
#   cmake -DCURRENT=<fresh.json> -DBASELINE=<baseline.json>
#         [-DTOLERANCE_PCT=15] [-DNFF_BAND=0.05] -P tools/check_fleet.cmake
#
# Shape checks are deliberately bands, not float equality: the campaign is
# bit-deterministic for a fixed seed on one platform (the tests pin that),
# but libm differences across toolchains can nudge the sampled doubles, so
# the CI gate asserts the paper's *structure*, not a bit pattern.
if(NOT DEFINED CURRENT OR NOT DEFINED BASELINE)
  message(FATAL_ERROR
    "usage: cmake -DCURRENT=<json> -DBASELINE=<json> -P check_fleet.cmake")
endif()
if(NOT DEFINED TOLERANCE_PCT)
  set(TOLERANCE_PCT 15)
endif()
if(NOT DEFINED NFF_BAND)
  set(NFF_BAND 0.05)
endif()

file(READ "${CURRENT}" current_json)
file(READ "${BASELINE}" baseline_json)

function(read_info out json_text key)
  string(JSON v ERROR_VARIABLE err GET "${json_text}" info ${key})
  if(err)
    message(FATAL_ERROR "snapshot lacks info.${key}: ${err}")
  endif()
  set(${out} "${v}" PARENT_SCOPE)
endfunction()

# Decimal string -> integer scaled by 10^4, so ratios near 1 keep enough
# resolution for band checks under CMake integer math.
function(to_deci4 out value)
  if(value MATCHES "[eE]")
    message(FATAL_ERROR "cannot parse scientific notation: ${value}")
  endif()
  if(NOT value MATCHES "^(-?)([0-9]+)(\\.([0-9]+))?$")
    message(FATAL_ERROR "not a number: ${value}")
  endif()
  set(sign "${CMAKE_MATCH_1}")
  set(int_part "${CMAKE_MATCH_2}")
  set(frac "${CMAKE_MATCH_4}0000")
  string(SUBSTRING "${frac}" 0 4 frac)
  math(EXPR scaled "${sign}(${int_part} * 10000 + ${frac})")
  set(${out} "${scaled}" PARENT_SCOPE)
endfunction()

set(failures 0)

# Throughput floors relative to the checked-in baseline.
foreach(key vehicle_epochs_per_sec campaign_vehicles_per_sec)
  read_info(cur "${current_json}" ${key})
  read_info(base "${baseline_json}" ${key})
  to_deci4(cur_c "${cur}")
  to_deci4(base_c "${base}")
  math(EXPR floor_c "${base_c} / 100 * (100 - ${TOLERANCE_PCT})")
  if(cur_c LESS floor_c)
    message(SEND_ERROR
      "fleet perf regression: ${key} = ${cur} < ${TOLERANCE_PCT}% floor of "
      "baseline ${base}")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "${key}: ${cur} (baseline ${base}) ok")
  endif()
endforeach()

# Steady-state stepping is allocation-free by design (DESIGN.md §17); any
# nonzero count is a hard failure — and the cross-shard proof.
read_info(cur "${current_json}" steady_allocs)
to_deci4(cur_c "${cur}")
if(cur_c GREATER 0)
  message(SEND_ERROR "fleet steady state allocates: steady_allocs = ${cur}")
  math(EXPR failures "${failures} + 1")
else()
  message(STATUS "steady_allocs: ${cur} ok")
endif()

# NFF ratios: absolute band around the baseline (Fig. 12 economics).
to_deci4(band_c "${NFF_BAND}")
foreach(key nff_naive nff_guided)
  read_info(cur "${current_json}" ${key})
  read_info(base "${baseline_json}" ${key})
  to_deci4(cur_c "${cur}")
  to_deci4(base_c "${base}")
  math(EXPR lo "${base_c} - ${band_c}")
  math(EXPR hi "${base_c} + ${band_c}")
  if(cur_c LESS lo OR cur_c GREATER hi)
    message(SEND_ERROR
      "fleet verdict drift: ${key} = ${cur} outside +/-${NFF_BAND} of "
      "baseline ${base}")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "${key}: ${cur} (baseline ${base} +/- ${NFF_BAND}) ok")
  endif()
endforeach()

# Structural shapes: absolute floors, machine-independent.
foreach(pair "infant_over_valley;20000" "wearout_over_valley;20000"
             "sw_head_share;5000")
  list(GET pair 0 key)
  list(GET pair 1 floor_c)
  read_info(cur "${current_json}" ${key})
  to_deci4(cur_c "${cur}")
  if(cur_c LESS ${floor_c})
    math(EXPR floor_int "${floor_c} / 10000")
    math(EXPR floor_frac "${floor_c} % 10000")
    message(SEND_ERROR
      "fleet shape lost: ${key} = ${cur} below structural floor "
      "${floor_int}.${floor_frac}")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "${key}: ${cur} ok")
  endif()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "fleet gate failed: ${failures} check(s)")
endif()
message(STATUS "fleet gate passed")
