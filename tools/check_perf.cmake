# Perf-smoke gate: compares a fresh `bench_kernel_hotpath --json` snapshot
# against the checked-in baseline (bench/baselines/) and fails on
#
#   * a throughput regression beyond TOLERANCE_PCT (default 10 %) on
#     events_per_sec, rounds_per_sec and symptoms_per_sec,
#   * any allocation on the hot paths (allocs_per_event / allocs_per_round
#     must stay exactly 0 — this one is machine-independent), and
#   * allocation growth on the diag ingest path (allocs_per_symptom may
#     exceed the baseline by at most TOLERANCE_PCT — it allocates by
#     design, so the gate is a ceiling, not a zero).
#
# Usage:
#   cmake -DCURRENT=<fresh.json> -DBASELINE=<baseline.json>
#         [-DTOLERANCE_PCT=10] -P tools/check_perf.cmake
#
# The throughput floor is relative to the checked-in baseline, which was
# recorded on a deliberately modest reference box — faster CI runners clear
# it with margin, so the gate catches collapses (an accidental O(n) scan,
# re-introduced per-event allocation), not percent-level jitter. Refresh
# the baseline (bench/baselines/README.md) when the reference hardware or
# the bench shape changes.
if(NOT DEFINED CURRENT OR NOT DEFINED BASELINE)
  message(FATAL_ERROR
    "usage: cmake -DCURRENT=<json> -DBASELINE=<json> -P check_perf.cmake")
endif()
if(NOT DEFINED TOLERANCE_PCT)
  set(TOLERANCE_PCT 10)
endif()

file(READ "${CURRENT}" current_json)
file(READ "${BASELINE}" baseline_json)

# Reads info.<key> from a snapshot; FATAL if missing or malformed.
function(read_info out json_text key)
  string(JSON v ERROR_VARIABLE err GET "${json_text}" info ${key})
  if(err)
    message(FATAL_ERROR "snapshot lacks info.${key}: ${err}")
  endif()
  set(${out} "${v}" PARENT_SCOPE)
endfunction()

# Scales a decimal number string by 100 into a 64-bit integer (truncating),
# so regressions can be judged with CMake's integer math() regardless of
# how the bench formatted the double. Scientific notation (only produced
# for non-integral values >= 1e15 or tiny fractions — neither occurs for
# sane throughput numbers) is rejected loudly rather than misparsed.
function(to_centi out value)
  if(value MATCHES "[eE]")
    message(FATAL_ERROR "cannot parse scientific notation: ${value}")
  endif()
  if(NOT value MATCHES "^(-?)([0-9]+)(\\.([0-9]+))?$")
    message(FATAL_ERROR "not a number: ${value}")
  endif()
  set(sign "${CMAKE_MATCH_1}")
  set(int_part "${CMAKE_MATCH_2}")
  set(frac "${CMAKE_MATCH_4}00")
  string(SUBSTRING "${frac}" 0 2 frac)
  math(EXPR scaled "${sign}(${int_part} * 100 + ${frac})")
  set(${out} "${scaled}" PARENT_SCOPE)
endfunction()

set(failures 0)

# Throughput keys: current must stay within TOLERANCE_PCT of baseline.
foreach(key events_per_sec rounds_per_sec symptoms_per_sec)
  read_info(cur "${current_json}" ${key})
  read_info(base "${baseline_json}" ${key})
  to_centi(cur_c "${cur}")
  to_centi(base_c "${base}")
  math(EXPR floor_c "${base_c} * (100 - ${TOLERANCE_PCT}) / 100")
  if(cur_c LESS floor_c)
    message(SEND_ERROR
      "perf regression: ${key} = ${cur} < ${TOLERANCE_PCT}% floor of "
      "baseline ${base}")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "${key}: ${cur} (baseline ${base}) ok")
  endif()
endforeach()

# Allocation keys: the hot paths are allocation-free by design (DESIGN.md
# §12); any nonzero count is a hard failure independent of machine speed.
foreach(key allocs_per_event allocs_per_round)
  read_info(cur "${current_json}" ${key})
  to_centi(cur_c "${cur}")
  if(cur_c GREATER 0)
    message(SEND_ERROR "hot path allocates: ${key} = ${cur} (want 0)")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "${key}: ${cur} ok")
  endif()
endforeach()

# The diag ingest path allocates by design (per-round map/set nodes), so
# its gate is a ceiling relative to baseline — catches a re-introduced
# per-symptom copy or container churn, tolerates layout jitter.
read_info(cur "${current_json}" allocs_per_symptom)
read_info(base "${baseline_json}" allocs_per_symptom)
to_centi(cur_c "${cur}")
to_centi(base_c "${base}")
math(EXPR ceil_c "${base_c} * (100 + ${TOLERANCE_PCT}) / 100")
if(cur_c GREATER ceil_c)
  message(SEND_ERROR
    "diag ingest allocation growth: allocs_per_symptom = ${cur} > "
    "${TOLERANCE_PCT}% ceiling over baseline ${base}")
  math(EXPR failures "${failures} + 1")
else()
  message(STATUS "allocs_per_symptom: ${cur} (baseline ${base}) ok")
endif()

if(failures GREATER 0)
  message(FATAL_ERROR "perf smoke failed: ${failures} check(s)")
endif()
message(STATUS "perf smoke passed")
